"""Bandwidth-sharing network model with max-min fair allocation.

Data movement in the reproduction (parallel file system traffic, staging
memcpys, burst-buffer drains) is modeled as *flows* traversing one or
more *links*.  Each link has a capacity in bytes/second; each flow may
additionally carry a per-flow rate cap (e.g. the size-dependent
efficiency of a GPFS client, or the memcpy bandwidth curve).

Rates are assigned by **max-min fairness with caps** (progressive
filling / water-filling): all flows grow uniformly until either a link
saturates (its flows freeze) or a flow hits its own cap (it freezes).
This is the standard fluid model for TCP-like fair sharing and
reproduces the saturation shapes the paper observes: aggregate
bandwidth grows with the number of clients until the shared file-system
link is the bottleneck, then plateaus.

Fast path (see ``docs/architecture.md``, "Simulator fast path"): active
flows are grouped into **flow classes** keyed by ``(links, cap)``.  All
members of a class receive identical rates under progressive filling,
so the water-filling rounds iterate over classes (dozens) instead of
flows (thousands), and a flow's current rate is read *lazily* from its
class.  Per-link membership counts are maintained incrementally across
rebalances, and the full rate recomputation is skipped entirely when
neither the class structure nor any link capacity changed since the
last allocation.  The reference per-flow implementation is preserved in
:mod:`repro.sim.network_ref`; the fast path is required (and tested) to
produce bit-identical simulated timestamps and rates.

Efficiency notes (guides: avoid per-event quadratic work): flow arrivals
and completions at the same simulated instant are *batched* — a single
rebalance runs after all of them, scheduled in a late priority band.
With ``N`` identical flows starting and finishing together (the common
bulk-synchronous I/O-phase case) the whole phase costs ``O(N)`` events
and two rate computations over ``O(1)`` classes, not ``O(N^2)``.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Optional, Sequence

from repro.sim.engine import PRIORITY_LATE, Engine, SimEvent

__all__ = ["Flow", "Link", "Network"]

#: Relative tolerance for "link saturated" / "cap reached" tests.
_REL_EPS = 1e-9
#: Absolute byte tolerance below which a flow counts as complete.
_BYTE_EPS = 1e-6


class Link:
    """A shared bandwidth resource (NIC, PFS backend, memory bus).

    Capacity may be changed at runtime (used by the contention model);
    in-flight flows are re-balanced from the current instant onward.
    """

    __slots__ = ("name", "_capacity", "_sat", "_network")

    def __init__(self, name: str, capacity: float):
        if capacity < 0:
            raise ValueError(f"link {name!r}: negative capacity {capacity}")
        self.name = name
        self._capacity = float(capacity)
        #: Saturation threshold ``capacity * _REL_EPS``, recomputed only
        #: when the capacity changes (not every water-filling round).
        self._sat = self._capacity * _REL_EPS
        self._network: Optional["Network"] = None

    @property
    def capacity(self) -> float:
        """Capacity in bytes/second."""
        return self._capacity

    def set_capacity(self, capacity: float) -> None:
        """Change the capacity, re-balancing any in-flight flows.

        A rebalance is scheduled even for an unchanged value (the
        reference implementation does the same, and the advance
        checkpoints must match it bit-for-bit); the allocator itself is
        only re-run when the value actually changed.
        """
        if capacity < 0:
            raise ValueError(f"link {self.name!r}: negative capacity {capacity}")
        capacity = float(capacity)
        network = self._network
        if network is not None:
            if capacity != self._capacity:
                network._epoch += 1
            if capacity <= 0.0:
                network._zero_links.add(self)
            else:
                network._zero_links.discard(self)
            network._mark_dirty()
        self._capacity = capacity
        self._sat = capacity * _REL_EPS

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Link {self.name!r} {self._capacity:.3g} B/s>"


class Flow:
    """A single data transfer across a path of links.

    ``done`` fires with the flow itself as value when the last byte has
    moved.  ``elapsed`` and ``achieved_rate`` are populated on
    completion and used to derive the paper's "aggregate bandwidth"
    metrics.
    """

    __slots__ = (
        "nbytes",
        "_rem",
        "links",
        "cap",
        "_rate",
        "_klass",
        "_order",
        "done",
        "tag",
        "started_at",
        "finished_at",
    )

    def __init__(
        self,
        engine: Engine,
        nbytes: float,
        links: Sequence[Link],
        cap: float,
        tag: Any,
    ):
        self.nbytes = float(nbytes)
        self._rem = float(nbytes)
        self.links = tuple(links)
        self.cap = float(cap)
        self._rate = 0.0
        self._klass: Optional["_FlowClass"] = None
        self._order = 0
        self.tag = tag
        # A static event name (formatting a per-flow f-string is
        # measurable at scale — the tag is on the flow for debugging),
        # constructed directly to skip the factory-method hop.
        self.done = SimEvent(engine, "flow")
        self.started_at = engine.now
        self.finished_at: Optional[float] = None

    @property
    def rate(self) -> float:
        """Current allocated rate (read lazily from the flow's class)."""
        klass = self._klass
        return klass.rate if klass is not None else self._rate

    @property
    def remaining(self) -> float:
        """Bytes left to move.

        While the flow is a class member its residual lives in the
        class's parallel ``rems`` array (the advance loop updates that
        array wholesale, far cheaper than per-flow attribute stores);
        this accessor is for observability, not the hot path.
        """
        klass = self._klass
        if klass is None:
            return self._rem
        klass.materialize()
        return klass.rems[klass.members.index(self)]

    @remaining.setter
    def remaining(self, value: float) -> None:
        klass = self._klass
        if klass is None:
            self._rem = value
        else:
            klass.materialize()
            klass.rems[klass.members.index(self)] = value

    @property
    def elapsed(self) -> float:
        """Transfer duration in seconds (``nan`` until complete)."""
        if self.finished_at is None:
            return float("nan")
        return self.finished_at - self.started_at

    @property
    def achieved_rate(self) -> float:
        """Average achieved bytes/second over the whole transfer.

        Always finite: an in-flight flow reports ``0.0`` (rather than
        propagating the ``nan`` from :attr:`elapsed`), and a
        zero-duration transfer (empty payload, or an instantaneous move
        over an uncapped path) also reports ``0.0`` — a finite,
        ``nbytes``-consistent value for the downstream regression in
        :mod:`repro.analysis.fitting`, where an ``inf``/``nan`` sample
        would poison the fit's r².
        """
        if self.finished_at is None:
            return 0.0
        dt = self.finished_at - self.started_at
        if dt > 0.0:
            return self.nbytes / dt
        return 0.0

    # Waitable protocol: ``yield flow`` waits for completion.
    def _as_event(self, engine: Engine) -> SimEvent:
        return self.done

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Flow {self.tag!r} {self.nbytes:.3g}B "
            f"remaining={self.remaining:.3g} rate={self.rate:.3g}>"
        )


class _FlowClass:
    """Equivalence class of active flows sharing ``(links, cap)``.

    Progressive filling assigns identical rates to all members, so the
    allocator operates on classes and members read their rate through
    :attr:`Flow.rate`.  ``link_mults`` caches each distinct link of the
    path with its multiplicity (a duplicated link in a path counts
    twice toward that link's flow count, exactly as in the reference
    allocator).
    """

    __slots__ = (
        "key", "links", "cap", "cap_thresh", "rate", "members", "rems",
        "decs", "pending", "count", "min_remaining", "max_nbytes",
        "link_mults",
    )

    def __init__(self, key: tuple, links: tuple[Link, ...], cap: float):
        self.key = key
        self.links = links
        self.cap = cap
        self.cap_thresh = cap * (1.0 - _REL_EPS)
        self.rate = 0.0
        self.members: list[Flow] = []
        #: Per-member residual bytes, parallel to ``members`` — current
        #: only after :meth:`materialize` replays ``decs``.
        self.rems: list[float] = []
        #: Advance decrements (``rate * dt`` per checkpoint) not yet
        #: applied to ``rems``.  Applying them member-by-member at every
        #: checkpoint would be O(members) per rebalance; instead each
        #: checkpoint appends one value here (``min_remaining`` still
        #: advances eagerly) and members replay the sequence — the same
        #: clamped subtractions in the same order, so bit-identical —
        #: only when their residuals are actually read.
        self.decs: list[float] = []
        #: Arrivals since the last allocation: they hold rate 0 (exactly
        #: like a fresh flow in the reference allocator) until the next
        #: water-filling pass merges them into ``members``.
        self.pending: list[Flow] = []
        self.count = 0
        #: Smallest member residual.  All members shrink by the same
        #: ``rate * dt`` each advance, so this tracks min(remaining)
        #: exactly without a member scan (subtraction is monotonic, so
        #: the minimizing member stays minimal and yields this value
        #: bit-for-bit).
        self.min_remaining = math.inf
        #: Upper bound on member sizes (drives the relative-residual
        #: completion threshold; may be stale-high after removals, which
        #: only makes the completion scan trigger conservatively).
        self.max_nbytes = 0.0
        mults: dict[Link, int] = {}
        for link in links:
            mults[link] = mults.get(link, 0) + 1
        self.link_mults = tuple(mults.items())

    def materialize(self) -> None:
        """Replay deferred advance decrements onto member residuals."""
        decs = self.decs
        if decs:
            rems = self.rems
            for i, r in enumerate(rems):
                for d in decs:
                    r = r - d
                    if r <= 0.0:
                        r = 0.0
                rems[i] = r
            decs.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        names = ",".join(l.name for l in self.links)
        return f"<FlowClass [{names}] cap={self.cap:.3g} n={self.count}>"


class Network:
    """Fluid-flow network: manages active flows and their fair rates."""

    def __init__(self, engine: Engine):
        self.engine = engine
        #: (links, cap) -> class of active flows (insertion-ordered).
        self._classes: dict[tuple, _FlowClass] = {}
        #: link -> {class: multiplicity} for classes whose path uses it.
        self._link_classes: dict[Link, dict[_FlowClass, int]] = {}
        #: link -> active-flow count (incremental, across rebalances).
        self._link_members: dict[Link, int] = {}
        self._n_active = 0
        self._order = 0
        #: Links currently at zero capacity (their flows freeze at rate
        #: 0); maintained here so the allocator doesn't scan every link.
        self._zero_links: set[Link] = set()
        #: Bumped on any arrival/completion/capacity change; the
        #: allocator is skipped while ``_alloc_epoch`` matches.
        self._epoch = 0
        self._alloc_epoch = -1
        self._last_update = 0.0
        self._dirty = False
        self._completion_token = 0
        #: Completed-flow count (observability / tests).
        self.completed = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def transfer(
        self,
        nbytes: float,
        links: Iterable[Link],
        cap: float = math.inf,
        latency: float = 0.0,
        tag: Any = None,
    ) -> Flow:
        """Start a transfer of ``nbytes`` over ``links``.

        ``cap`` bounds this flow's rate regardless of link headroom
        (bytes/second).  ``latency`` is a fixed startup delay (request
        setup, metadata round-trip) before any byte moves.  Returns the
        :class:`Flow`, whose ``done`` event fires on completion; a flow
        is itself waitable, so process code reads naturally::

            flow = network.transfer(nbytes, [nic, pfs])
            yield flow
        """
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        if cap <= 0:
            raise ValueError(f"flow cap must be positive, got {cap}")
        links = list(links)
        for link in links:
            if link._network is None:
                link._network = self
                if link._capacity <= 0.0:
                    self._zero_links.add(link)
            elif link._network is not self:
                raise RuntimeError(f"link {link.name!r} belongs to another network")
        flow = Flow(self.engine, nbytes, links, cap, tag)
        if nbytes <= _BYTE_EPS:
            if latency > 0.0:
                self.engine.schedule(latency, self._finish_now, flow)
            else:
                self._finish_now(flow)
            return flow
        if latency > 0.0:
            self.engine.schedule(latency, self._activate, flow)
        else:
            self._activate(flow)
        return flow

    def link_throughput(self, link: Link) -> float:
        """Instantaneous aggregate rate through ``link`` (bytes/second).

        Served from the per-class aggregates the fast path maintains —
        ``O(classes on link)`` instead of a scan over every active flow.
        """
        self._settle()
        classes = self._link_classes.get(link)
        if not classes:
            return 0.0
        return sum(cls.rate * cls.count for cls in classes)

    @property
    def active_flows(self) -> int:
        """Number of in-flight flows (maintained count, no flow scan)."""
        self._settle()
        return self._n_active

    @property
    def class_count(self) -> int:
        """Number of distinct flow classes currently active."""
        return len(self._classes)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _finish_now(self, flow: Flow) -> None:
        flow.started_at = min(flow.started_at, self.engine.now)
        flow.finished_at = self.engine.now
        flow._rem = 0.0
        self.completed += 1
        flow.done.succeed(flow)

    def _activate(self, flow: Flow) -> None:
        flow.started_at = self.engine.now
        self._order += 1
        flow._order = self._order
        key = (flow.links, flow.cap)
        cls = self._classes.get(key)
        if cls is None:
            cls = _FlowClass(key, flow.links, flow.cap)
            self._classes[key] = cls
            link_classes = self._link_classes
            for link, mult in cls.link_mults:
                members = link_classes.get(link)
                if members is None:
                    link_classes[link] = {cls: mult}
                else:
                    members[cls] = mult
        # Fresh arrivals hold rate 0 until the next water-filling pass
        # (the reference allocator behaves the same way): they sit on the
        # class's pending list so the advance/completion scans skip them.
        cls.pending.append(flow)
        link_members = self._link_members
        for link, mult in cls.link_mults:
            link_members[link] = link_members.get(link, 0) + mult
        self._n_active += 1
        self._epoch += 1
        self._mark_dirty()

    def _drop_members(self, cls: _FlowClass, n: int) -> None:
        """Account for ``n`` members leaving ``cls`` (class dropped at 0)."""
        link_members = self._link_members
        for link, mult in cls.link_mults:
            link_members[link] -= mult * n
        if cls.count == 0 and not cls.pending:
            del self._classes[cls.key]
            link_classes = self._link_classes
            for link, _mult in cls.link_mults:
                members = link_classes[link]
                del members[cls]
                if not members:
                    del link_classes[link]
                    del link_members[link]

    def _mark_dirty(self) -> None:
        if not self._dirty:
            self._dirty = True
            # Late priority: batch all arrivals/changes at this instant.
            self.engine.schedule(0.0, self._rebalance, priority=PRIORITY_LATE)

    def _settle(self) -> None:
        """Force a pending rebalance to run synchronously (for queries)."""
        if self._dirty:
            self._rebalance()

    def _rebalance(self) -> None:
        self._dirty = False
        stats = self.engine.stats
        stats.rebalances += 1
        self._advance_and_complete()
        if self._alloc_epoch != self._epoch:
            self._allocate()
            self._alloc_epoch = self._epoch
        else:
            # Pure no-op rebalance (e.g. a redundant capacity write or a
            # superseded query settle): rates are still valid, skip the
            # water-filling entirely.
            stats.rebalances_skipped += 1
        self._schedule_completion()

    def _advance_and_complete(self) -> None:
        # Advance member residuals to ``now``, then complete drained
        # flows — fused into one pass over the classes (each class's
        # advance and completion are independent of every other's, so
        # the arithmetic matches the reference's advance-all-then-scan-
        # all sequence bit-for-bit).
        #
        # A flow is complete when its residual is negligible relative to
        # its size, or when draining it needs a time step too small to
        # represent at the current simulated time (float resolution) —
        # otherwise zero-progress completion events would loop forever.
        now = self.engine.now
        dt = now - self._last_update
        self._last_update = now
        advance = dt > 0.0
        time_eps = max(1e-12, abs(now) * 1e-12)
        finished: list[Flow] = []
        for cls in list(self._classes.values()):
            rate = cls.rate
            if advance and rate > 0.0:
                dec = rate * dt
                # Member residuals advance lazily (see _FlowClass.decs);
                # only the class minimum is maintained eagerly.
                # Subtraction is monotonic, so the minimizing member
                # stays minimal: the class min advances by the same
                # arithmetic the members will replay, bit-for-bit.
                cls.decs.append(dec)
                rem = cls.min_remaining - dec
                cls.min_remaining = rem if rem > 0.0 else 0.0
            # Quick reject: every member's residual is at least
            # ``min_remaining`` and every member's relative threshold is
            # at most ``max_nbytes * 1e-9``, so when the class minimum
            # clears all three completion tests no member can possibly
            # pass them — skip the member scan entirely.
            min_rem = cls.min_remaining
            if (
                min_rem > _BYTE_EPS
                and min_rem > cls.max_nbytes * 1e-9
                and (rate <= 0.0 or min_rem / rate > time_eps)
            ):
                continue
            cls.materialize()
            keep: list[Flow] = []
            keep_rems: list[float] = []
            new_min = math.inf
            new_max = 0.0
            for f, rem in zip(cls.members, cls.rems):
                if (
                    rem <= _BYTE_EPS
                    or rem <= f.nbytes * 1e-9
                    or (rate > 0.0 and rem / rate <= time_eps)
                ):
                    f._rate = rate
                    f._klass = None
                    f._rem = rem
                    finished.append(f)
                else:
                    keep.append(f)
                    keep_rems.append(rem)
                    if rem < new_min:
                        new_min = rem
                    if f.nbytes > new_max:
                        new_max = f.nbytes
            dropped = cls.count - len(keep)
            cls.members = keep
            cls.rems = keep_rems
            cls.count = len(keep)
            cls.min_remaining = new_min
            cls.max_nbytes = new_max
            self._drop_members(cls, dropped)
        if not finished:
            return
        self._n_active -= len(finished)
        self._epoch += 1
        # Completion callbacks must fire in activation order — the exact
        # order the reference implementation's active-list scan produces
        # (downstream processes observe it, e.g. in-flight counters).
        finished.sort(key=_activation_order)
        for flow in finished:
            flow.finished_at = now
            flow._rem = 0.0
            self.completed += 1
            flow.done.succeed(flow)

    def _allocate(self) -> None:
        """Max-min fair rates with per-flow caps (progressive filling).

        Operates on flow classes: every round computes one uniform rate
        increment from per-link residuals and per-class cap headroom,
        then freezes saturated classes.  Arithmetic is ordered so every
        float operation matches the reference per-flow allocator.
        """
        classes = self._classes
        for cls in classes.values():
            cls.rate = 0.0
            pending = cls.pending
            if pending:
                # New members must not replay decrements from before
                # they joined: flush the deferred ones first.
                cls.materialize()
                members = cls.members
                rems = cls.rems
                min_rem = cls.min_remaining
                max_nb = cls.max_nbytes
                for flow in pending:
                    flow._klass = cls
                    # A pending flow has moved no bytes: its residual is
                    # its full size.
                    nb = flow._rem
                    rems.append(nb)
                    if nb < min_rem:
                        min_rem = nb
                    if nb > max_nb:
                        max_nb = nb
                cls.min_remaining = min_rem
                cls.max_nbytes = max_nb
                members.extend(pending)
                cls.count = len(members)
                pending.clear()
        if not classes:
            return
        link_classes = self._link_classes
        # Per-link unfrozen-flow count this pass, seeded from the
        # membership counts maintained across rebalances.  The residual
        # map is materialized lazily during round 1 (whose residuals are
        # just the link capacities) — most passes finish in one round
        # and never pay for the upfront dict build.
        nmap = dict(self._link_members)
        residual: Optional[dict[Link, float]] = None
        unfrozen = set(classes.values())

        # Flows on a zero-capacity link can never move: freeze at rate 0.
        if self._zero_links:
            for link in self._zero_links:
                for cls in link_classes.get(link, ()):
                    if cls in unfrozen:
                        unfrozen.remove(cls)
                        count = cls.count
                        for lnk, mult in cls.link_mults:
                            nmap[lnk] -= mult * count

        rounds = 0
        inf = math.inf
        while unfrozen:
            rounds += 1
            inc = inf
            if residual is None:
                for link, n in nmap.items():
                    if n:
                        v = link._capacity / n
                        if v < inc:
                            inc = v
            else:
                for link, n in nmap.items():
                    if n:
                        v = residual[link] / n
                        if v < inc:
                            inc = v
            for cls in unfrozen:
                v = cls.cap - cls.rate
                if v < inc:
                    inc = v
            if inc == inf:
                # No finite constraint: flows are effectively unbounded.
                for cls in unfrozen:
                    cls.rate = inf
                break
            if inc < 0.0:
                inc = 0.0
            for cls in unfrozen:
                cls.rate += inc
            # Classes are removed from ``unfrozen`` as they are appended,
            # so ``frozen_now`` stays duplicate-free.  Residual update
            # and saturation check are fused into one pass (each link's
            # residual is independent, so the values match the
            # reference's update-all-then-check-all sequence); only
            # links with unfrozen members matter — a link whose unfrozen
            # count dropped to zero has no class left to freeze (exactly
            # what the reference's per-flow scan would find).
            frozen_now = [cls for cls in unfrozen if cls.rate >= cls.cap_thresh]
            for cls in frozen_now:
                unfrozen.remove(cls)
            if residual is None:
                residual = {}
                for link, n in nmap.items():
                    if n:
                        r = link._capacity - inc * n
                        residual[link] = r
                        if r <= link._sat:
                            for cls in link_classes[link]:
                                if cls in unfrozen:
                                    unfrozen.remove(cls)
                                    frozen_now.append(cls)
            else:
                for link, n in nmap.items():
                    if n:
                        r = residual[link] - inc * n
                        residual[link] = r
                        if r <= link._sat:
                            for cls in link_classes[link]:
                                if cls in unfrozen:
                                    unfrozen.remove(cls)
                                    frozen_now.append(cls)
            if not frozen_now:
                # Numerical stall safeguard; freeze everything.
                break
            if not unfrozen:
                break  # final round: nothing left to read the counts
            for cls in frozen_now:
                count = cls.count
                for link, mult in cls.link_mults:
                    nmap[link] -= mult * count
        self.engine.stats.allocator_rounds += rounds

    def _schedule_completion(self) -> None:
        self._completion_token += 1
        token = self._completion_token
        next_dt = math.inf
        for cls in self._classes.values():
            rate = cls.rate
            if rate > 0.0 and cls.count:
                # min(remaining)/rate == min(remaining/rate) for the
                # class's uniform positive rate, and the class minimum is
                # tracked incrementally — no member scan.
                v = cls.min_remaining / rate
                if v < next_dt:
                    next_dt = v
        if next_dt == math.inf:
            return
        self.engine.schedule(
            max(0.0, next_dt), self._on_completion, token, priority=PRIORITY_LATE
        )

    def _on_completion(self, token: int) -> None:
        if token != self._completion_token:
            return  # superseded by a newer rebalance
        self._rebalance()


def _activation_order(flow: Flow) -> int:
    return flow._order
