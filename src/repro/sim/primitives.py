"""Synchronization primitives for simulation processes.

These mirror the classic concurrent-programming toolbox (semaphores,
mutexes, bounded queues, barriers), but block in *simulated* time: an
``acquire`` that cannot proceed parks the calling process on an internal
:class:`~repro.sim.engine.SimEvent` until a ``release`` wakes it.

All wakeups are FIFO, which keeps simulations deterministic and free of
starvation.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator

from repro.check import hooks as _check_hooks
from repro.sim.engine import Engine, SimEvent

__all__ = ["Barrier", "Mutex", "Queue", "Semaphore"]


class Semaphore:
    """Counting semaphore with FIFO wakeup.

    Usage from a process::

        yield sem.acquire()
        try:
            ...
        finally:
            sem.release()
    """

    def __init__(self, engine: Engine, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: Deque[SimEvent] = deque()

    @property
    def in_use(self) -> int:
        """Number of currently-held permits."""
        return self._in_use

    @property
    def queued(self) -> int:
        """Number of processes waiting for a permit."""
        return len(self._waiters)

    def acquire(self) -> SimEvent:
        """Return a waitable that fires once a permit is held."""
        ev = self.engine.event(name=f"{self.name}.acquire")
        if self._in_use < self.capacity:
            self._in_use += 1
            ck = _check_hooks.checker
            if ck is not None:
                # Direct grant: the permit may have been freed by an
                # earlier release; inherit that release's clock.
                ck.on_acquire(self)
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def cancel(self, ev: SimEvent) -> bool:
        """Withdraw a pending :meth:`acquire` (e.g. after a timed-out
        ``Engine.timeout_guard``), so the abandoned waiter can never be
        handed a permit nobody will release.

        Returns ``True`` if the waiter was still queued.  If the permit
        was already granted (``ev.triggered``), the caller holds it and
        must :meth:`release` it instead; ``False`` is returned.
        """
        try:
            self._waiters.remove(ev)
            return True
        except ValueError:
            return False

    def release(self) -> None:
        """Release a held permit, waking the oldest waiter if any."""
        if self._in_use <= 0:
            raise RuntimeError(f"semaphore {self.name!r} released when not held")
        ck = _check_hooks.checker
        if ck is not None:
            ck.on_release(self)
        if self._waiters:
            # Hand the permit directly to the next waiter.
            self._waiters.popleft().succeed()
        else:
            self._in_use -= 1


class Mutex(Semaphore):
    """Binary semaphore."""

    def __init__(self, engine: Engine, name: str = ""):
        super().__init__(engine, capacity=1, name=name)


class Queue:
    """Unbounded FIFO channel between processes.

    ``put`` never blocks; ``get`` yields until an item is available.
    Used for work queues of background I/O workers (the Argobots-pool
    analogue in the async VOL connector).
    """

    def __init__(self, engine: Engine, name: str = ""):
        self.engine = engine
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[SimEvent] = deque()
        self._closed = False

    def __len__(self) -> int:
        return len(self._items)

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    def put(self, item: Any) -> None:
        """Enqueue ``item``, waking the oldest blocked getter if any."""
        if self._closed:
            raise RuntimeError(f"put on closed queue {self.name!r}")
        ck = _check_hooks.checker
        if ck is not None:
            # Publish the producer's clock: whoever receives this item
            # (immediate get or pop_if) happens-after this put.
            ck.on_release(self)
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> SimEvent:
        """Return a waitable whose value is the next item.

        On a closed, drained queue the waitable's value is
        :data:`Queue.CLOSED`, which consumers use as a shutdown signal.
        """
        ev = self.engine.event(name=f"{self.name}.get")
        if self._items or self._closed:
            ck = _check_hooks.checker
            if ck is not None:
                ck.on_acquire(self)
        if self._items:
            ev.succeed(self._items.popleft())
        elif self._closed:
            ev.succeed(Queue.CLOSED)
        else:
            self._getters.append(ev)
        return ev

    def cancel_get(self, ev: SimEvent) -> bool:
        """Withdraw a pending :meth:`get` whose waiter gave up (deadline).

        Returns ``True`` if the getter was still queued; ``False`` if it
        already received an item (the caller owns that item) or was
        released by :meth:`close`.
        """
        try:
            self._getters.remove(ev)
            return True
        except ValueError:
            return False

    def pop_if(self, predicate) -> Any:
        """Pop and return the head item if ``predicate(head)``; else None.

        Lets a consumer opportunistically coalesce adjacent work (e.g.
        the async VOL's write-merging) without blocking.
        """
        if self._items and predicate(self._items[0]):
            ck = _check_hooks.checker
            if ck is not None:
                ck.on_acquire(self)
            return self._items.popleft()
        return None

    def close(self) -> None:
        """Close the queue: pending and future gets receive ``CLOSED``."""
        ck = _check_hooks.checker
        if ck is not None:
            # Future closed-queue gets happen-after the close.
            ck.on_release(self)
        self._closed = True
        while self._getters:
            self._getters.popleft().succeed(Queue.CLOSED)

    #: Sentinel returned by :meth:`get` when the queue is closed and empty.
    CLOSED = object()


class Barrier:
    """Cyclic barrier for a fixed number of parties.

    Every party does ``yield barrier.wait()``; the barrier releases all
    of them once the last one arrives, then resets for the next cycle.
    The value of the wait is the barrier *generation* index (0, 1, ...),
    useful for detecting epoch boundaries in tests.
    """

    def __init__(self, engine: Engine, parties: int, name: str = ""):
        if parties < 1:
            raise ValueError(f"parties must be >= 1, got {parties}")
        self.engine = engine
        self.parties = parties
        self.name = name
        self._generation = 0
        self._arrived = 0
        self._event = engine.event(name=f"{name}.gen0")

    @property
    def generation(self) -> int:
        """Completed barrier cycles so far."""
        return self._generation

    @property
    def waiting(self) -> int:
        """Parties currently blocked at the barrier."""
        return self._arrived

    def wait(self) -> SimEvent:
        """Arrive at the barrier; returns a waitable for the release."""
        self._arrived += 1
        if self._arrived > self.parties:
            raise RuntimeError(
                f"barrier {self.name!r}: {self._arrived} arrivals for "
                f"{self.parties} parties"
            )
        event = self._event
        ck = _check_hooks.checker
        if ck is not None:
            # Every arrival publishes its clock; the last arriver joins
            # them all before triggering, so the release event's snapshot
            # carries every party's history.
            ck.on_release(self)
        if self._arrived == self.parties:
            generation = self._generation
            self._generation += 1
            self._arrived = 0
            self._event = self.engine.event(
                name=f"{self.name}.gen{self._generation}"
            )
            if ck is not None:
                ck.on_acquire(self)
            event.succeed(generation)
        return event


def hold(engine: Engine, seconds: float) -> Generator:
    """Tiny helper process body: wait ``seconds`` then return them."""
    yield engine.timeout(seconds)
    return seconds
