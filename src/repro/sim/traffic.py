"""Synthetic traffic shapes for simulator benchmarking and testing.

Each builder drives a bare :class:`~repro.sim.network.Network` (or the
reference allocator in :mod:`repro.sim.network_ref` — the module is a
parameter, so the exact same traffic can run against either) with a
workload shaped like the reproduction's hot paths:

- :func:`identical_flows` — N identical flows on one shared link, the
  bulk-synchronous best case (one flow class).
- :func:`mixed_classes` — K classes × M flows with heterogeneous caps
  and private first hops sharing one backend, the general case.
- :func:`fig3a_phase` — a VPIC-IO-shaped weak-scaling write phase:
  per-node NIC links feeding a shared file-system backend, per-client
  size-dependent rate caps, and quantized metadata-staggered arrivals
  (the same stagger :mod:`repro.platform.storage` applies), repeated
  over a few timesteps.  This is the shape every fig3–fig8 sweep is
  built from and the benchmark the fast path is judged on.
- :func:`class_churn` — waves of short-lived flows whose (links, cap)
  keys rotate every wave, so flow-class slots are installed, freed and
  recycled constantly (the allocator's bookkeeping worst case).
- :func:`many_links` — flows fanned across a wide link pool with long
  paths, stressing the class×link incidence structure and the
  saturated-link propagation of the filling loop.

All builders are deterministic: same arguments → same event trace.
"""

from __future__ import annotations

import math
from types import ModuleType
from typing import Optional

from repro.sim import network as _network
from repro.sim.engine import Engine

__all__ = [
    "identical_flows",
    "mixed_classes",
    "fig3a_phase",
    "class_churn",
    "many_links",
]


def identical_flows(
    net_mod: Optional[ModuleType] = None,
    n: int = 1000,
    nbytes: float = 1e6,
    capacity: float = 1e9,
) -> tuple[Engine, object, list]:
    """N identical flows over one shared link; returns (engine, net, flows)."""
    net_mod = net_mod or _network
    engine = Engine()
    net = net_mod.Network(engine)
    link = net_mod.Link("shared", capacity)
    flows = [net.transfer(nbytes, [link], tag=i) for i in range(n)]
    return engine, net, flows


def mixed_classes(
    net_mod: Optional[ModuleType] = None,
    n_classes: int = 64,
    flows_per_class: int = 32,
    backend_bw: float = 1e9,
    hop_bw: float = 1e8,
    nbytes: float = 1e6,
) -> tuple[Engine, object, list]:
    """K flow classes (private hop + shared backend, distinct caps)."""
    net_mod = net_mod or _network
    engine = Engine()
    net = net_mod.Network(engine)
    backend = net_mod.Link("backend", backend_bw)
    flows = []
    for c in range(n_classes):
        hop = net_mod.Link(f"hop{c}", hop_bw)
        cap = hop_bw / (2.0 + c % 7)
        for i in range(flows_per_class):
            flows.append(
                net.transfer(nbytes, [hop, backend], cap=cap, tag=(c, i))
            )
    return engine, net, flows


class _Fig3aRank:
    """Callback-driven rank state machine for :func:`fig3a_phase`.

    One instance drives one rank's sequential request chain: issuing a
    transfer registers the instance itself as the flow's completion
    callback, and the callback issues the next request (or joins the
    timestep barrier).  This is observationally identical to a
    generator process yielding each flow — the callback runs at exactly
    the point such a process would resume, in the same dispatch order —
    but skips the per-flow generator frame and wait bookkeeping that
    dominated the driver at scale.  The driver is shared by both
    network modules, so every microsecond it burns per flow is time
    stolen from what the benchmark actually compares.
    """

    __slots__ = (
        "transfer", "append", "inflight", "barrier", "path", "rank",
        "step", "d", "metadata_latency", "penalty", "quantum", "cap",
        "nbytes", "datasets", "timesteps",
    )

    def __init__(self, transfer, append, inflight, barrier, path, rank,
                 metadata_latency, penalty, quantum, cap, nbytes,
                 datasets, timesteps):
        self.transfer = transfer
        self.append = append
        self.inflight = inflight
        self.barrier = barrier
        self.path = path
        self.rank = rank
        self.step = 0
        self.d = 0
        self.metadata_latency = metadata_latency
        self.penalty = penalty
        self.quantum = quantum
        self.cap = cap
        self.nbytes = nbytes
        self.datasets = datasets
        self.timesteps = timesteps

    def issue(self) -> None:
        # The latency arithmetic is kept operation-for-operation
        # identical to the storage layer's (it feeds simulated
        # timestamps, which must not drift by a ulp).
        inflight = self.inflight
        q = self.quantum
        latency = self.metadata_latency + self.penalty * inflight[0]
        latency = math.ceil(latency / q - 1e-9) * q
        inflight[0] += 1
        # Positional call (both network modules share this signature).
        flow = self.transfer(
            self.nbytes, self.path, self.cap, latency,
            (self.rank, self.step, self.d),
        )
        self.append(flow)
        flow.done.callbacks.append(self)

    def __call__(self, ev) -> None:
        # A flow of ours completed.
        self.inflight[0] -= 1
        d = self.d + 1
        if d < self.datasets:
            self.d = d
            self.issue()
            return
        release = self.barrier.wait()
        step = self.step + 1
        if step < self.timesteps:
            self.step = step
            self.d = 0
            release.callbacks.append(self._next_timestep)

    def _next_timestep(self, ev) -> None:
        self.issue()


def fig3a_phase(
    net_mod: Optional[ModuleType] = None,
    ranks: int = 1536,
    ranks_per_node: int = 6,
    timesteps: int = 2,
    datasets: int = 8,
    nbytes_per_rank: float = 64e6,
    nic_bw: float = 25e9,
    backend_bw: float = 2.5e12,
    efficiency_s0: float = 8 * (1 << 20),
    metadata_latency: float = 3e-3,
    client_latency_penalty: float = 5e-6,
) -> tuple[Engine, object, list]:
    """A fig3a-shaped bulk-synchronous write sweep phase.

    Each of ``ranks`` ranks writes ``datasets`` sequential requests of
    ``nbytes_per_rank`` (VPIC-IO writes one HDF5 dataset per particle
    variable) through its node's NIC into a shared backend, then joins
    a barrier before the next timestep.  Requests carry the storage
    layer's size-dependent client cap and quantized
    metadata-serialization stagger, driven by a live in-flight counter
    exactly like :meth:`repro.platform.storage.ParallelFileSystem`.
    Sequential per-rank chains scatter completions and arrivals across
    many instants — the rebalance-heavy pattern every fig3–fig8 sweep
    is built from, and the benchmark the fast path is judged on.

    Ranks are driven by :class:`_Fig3aRank` callback chains rather than
    generator processes; the issue order, latency arithmetic, and
    completion-dispatch ordering are identical.
    """
    net_mod = net_mod or _network
    engine = Engine()
    net = net_mod.Network(engine)
    nodes = (ranks + ranks_per_node - 1) // ranks_per_node
    nics = [net_mod.Link(f"nic{i}", nic_bw) for i in range(nodes)]
    backend = net_mod.Link("backend", backend_bw)
    eff = nbytes_per_rank / (nbytes_per_rank + efficiency_s0)
    cap = nic_bw * eff
    quantum = metadata_latency / 4.0
    flows: list = []
    inflight = [0]

    from repro.sim.primitives import Barrier

    barrier = Barrier(engine, ranks, name="timestep")
    transfer = net.transfer
    append = flows.append
    for rank in range(ranks):
        _Fig3aRank(
            transfer, append, inflight, barrier,
            (nics[rank // ranks_per_node], backend), rank,
            metadata_latency, client_latency_penalty, quantum, cap,
            nbytes_per_rank, datasets, timesteps,
        ).issue()
    return engine, net, flows


def class_churn(
    net_mod: Optional[ModuleType] = None,
    waves: int = 150,
    flows_per_wave: int = 8,
    nlinks: int = 12,
    hop_bw: float = 1e9,
    backend_bw: float = 2e10,
) -> tuple[Engine, object, list]:
    """Waves of short flows with rotating (links, cap) class keys.

    Each wave's flows pick a different hop link and cap than the last,
    and are sized to drain before the next wave arrives — so every wave
    installs fresh flow classes into slots just freed by the previous
    one.  Stresses class install/free/recycle and the incremental
    incidence bookkeeping rather than the filling rounds themselves.
    """
    net_mod = net_mod or _network
    engine = Engine()
    net = net_mod.Network(engine)
    links = [net_mod.Link(f"hop{i}", hop_bw) for i in range(nlinks)]
    backend = net_mod.Link("backend", backend_bw)
    flows: list = []

    def driver():
        for w in range(waves):
            for i in range(flows_per_wave):
                hop = links[(3 * w + i) % nlinks]
                cap = 1e6 * (1 + (w + i) % 9)
                flows.append(net.transfer(
                    2e5 + 1e4 * i, [hop, backend], cap=cap, tag=(w, i),
                ))
            yield engine.timeout(0.31)

    engine.process(driver(), name="churn")
    return engine, net, flows


def many_links(
    net_mod: Optional[ModuleType] = None,
    nflows: int = 600,
    nlinks: int = 96,
    path_len: int = 6,
    link_bw: float = 1e9,
    nbytes: float = 4e6,
) -> tuple[Engine, object, list]:
    """Flows striped across a wide link pool with long paths.

    Each flow crosses ``path_len`` links chosen by a deterministic
    stride, so most link pairs are shared by several classes and a
    saturated link freezes many classes at once — the worst case for
    the class×link incidence and saturation-propagation machinery.
    ``path_len`` above the allocator's initial degree also exercises
    incidence-array growth.  Small latency staggers spread arrivals
    over a few instants to force repeated rebalances.
    """
    net_mod = net_mod or _network
    engine = Engine()
    net = net_mod.Network(engine)
    links = [
        net_mod.Link(f"l{i}", link_bw * (1 + i % 5) / 3.0)
        for i in range(nlinks)
    ]
    flows: list = []
    for f in range(nflows):
        path = [links[(7 * f + 13 * k) % nlinks] for k in range(path_len)]
        cap = math.inf if f % 3 else link_bw / (2.0 + f % 11)
        flows.append(net.transfer(
            nbytes * (1 + f % 4) / 2.0, path, cap=cap,
            latency=(f % 7) * 1e-3, tag=f,
        ))
    return engine, net, flows
