"""Synthetic traffic shapes for simulator benchmarking and testing.

Each builder drives a bare :class:`~repro.sim.network.Network` (or the
reference allocator in :mod:`repro.sim.network_ref` — the module is a
parameter, so the exact same traffic can run against either) with a
workload shaped like the reproduction's hot paths:

- :func:`identical_flows` — N identical flows on one shared link, the
  bulk-synchronous best case (one flow class).
- :func:`mixed_classes` — K classes × M flows with heterogeneous caps
  and private first hops sharing one backend, the general case.
- :func:`fig3a_phase` — a VPIC-IO-shaped weak-scaling write phase:
  per-node NIC links feeding a shared file-system backend, per-client
  size-dependent rate caps, and quantized metadata-staggered arrivals
  (the same stagger :mod:`repro.platform.storage` applies), repeated
  over a few timesteps.  This is the shape every fig3–fig8 sweep is
  built from and the benchmark the fast path is judged on.

All builders are deterministic: same arguments → same event trace.
"""

from __future__ import annotations

import math
from types import ModuleType
from typing import Optional

from repro.sim import network as _network
from repro.sim.engine import Engine

__all__ = ["identical_flows", "mixed_classes", "fig3a_phase"]


def identical_flows(
    net_mod: Optional[ModuleType] = None,
    n: int = 1000,
    nbytes: float = 1e6,
    capacity: float = 1e9,
) -> tuple[Engine, object, list]:
    """N identical flows over one shared link; returns (engine, net, flows)."""
    net_mod = net_mod or _network
    engine = Engine()
    net = net_mod.Network(engine)
    link = net_mod.Link("shared", capacity)
    flows = [net.transfer(nbytes, [link], tag=i) for i in range(n)]
    return engine, net, flows


def mixed_classes(
    net_mod: Optional[ModuleType] = None,
    n_classes: int = 64,
    flows_per_class: int = 32,
    backend_bw: float = 1e9,
    hop_bw: float = 1e8,
    nbytes: float = 1e6,
) -> tuple[Engine, object, list]:
    """K flow classes (private hop + shared backend, distinct caps)."""
    net_mod = net_mod or _network
    engine = Engine()
    net = net_mod.Network(engine)
    backend = net_mod.Link("backend", backend_bw)
    flows = []
    for c in range(n_classes):
        hop = net_mod.Link(f"hop{c}", hop_bw)
        cap = hop_bw / (2.0 + c % 7)
        for i in range(flows_per_class):
            flows.append(
                net.transfer(nbytes, [hop, backend], cap=cap, tag=(c, i))
            )
    return engine, net, flows


def fig3a_phase(
    net_mod: Optional[ModuleType] = None,
    ranks: int = 1536,
    ranks_per_node: int = 6,
    timesteps: int = 2,
    datasets: int = 8,
    nbytes_per_rank: float = 64e6,
    nic_bw: float = 25e9,
    backend_bw: float = 2.5e12,
    efficiency_s0: float = 8 * (1 << 20),
    metadata_latency: float = 3e-3,
    client_latency_penalty: float = 5e-6,
) -> tuple[Engine, object, list]:
    """A fig3a-shaped bulk-synchronous write sweep phase.

    Each of ``ranks`` rank processes writes ``datasets`` sequential
    requests of ``nbytes_per_rank`` (VPIC-IO writes one HDF5 dataset per
    particle variable) through its node's NIC into a shared backend,
    then joins a barrier before the next timestep.  Requests carry the
    storage layer's size-dependent client cap and quantized
    metadata-serialization stagger, driven by a live in-flight counter
    exactly like :meth:`repro.platform.storage.ParallelFileSystem`.
    Sequential per-rank chains scatter completions and arrivals across
    many instants — the rebalance-heavy pattern every fig3–fig8 sweep
    is built from, and the benchmark the fast path is judged on.
    """
    net_mod = net_mod or _network
    engine = Engine()
    net = net_mod.Network(engine)
    nodes = (ranks + ranks_per_node - 1) // ranks_per_node
    nics = [net_mod.Link(f"nic{i}", nic_bw) for i in range(nodes)]
    backend = net_mod.Link("backend", backend_bw)
    eff = nbytes_per_rank / (nbytes_per_rank + efficiency_s0)
    cap = nic_bw * eff
    quantum = metadata_latency / 4.0
    flows: list = []
    inflight = [0]

    from repro.sim.primitives import Barrier

    barrier = Barrier(engine, ranks, name="timestep")

    def rank_proc(rank: int):
        nic = nics[rank // ranks_per_node]
        for step in range(timesteps):
            for d in range(datasets):
                latency = (metadata_latency
                           + client_latency_penalty * inflight[0])
                latency = math.ceil(latency / quantum - 1e-9) * quantum
                inflight[0] += 1
                flow = net.transfer(
                    nbytes_per_rank, [nic, backend], cap=cap,
                    latency=latency, tag=(rank, step, d),
                )
                flows.append(flow)
                yield flow
                inflight[0] -= 1
            yield barrier.wait()

    for rank in range(ranks):
        engine.process(rank_proc(rank), name=f"rank{rank}")
    return engine, net, flows
