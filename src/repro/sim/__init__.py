"""Discrete-event simulation kernel.

This package provides the simulation substrate on which the whole
reproduction runs: a deterministic event-heap engine with generator-based
processes (:mod:`repro.sim.engine`), synchronization primitives
(:mod:`repro.sim.primitives`), and a bandwidth-sharing network model with
max-min fair allocation (:mod:`repro.sim.network`).

The design follows the structure of classic process-interaction DES
libraries (SimPy, Argobots-style tasking): a *process* is a Python
generator that ``yield``\\ s *waitables* (timeouts, events, other
processes); the engine resumes it when the waitable fires.  All state is
local to an :class:`~repro.sim.engine.Engine` instance, so independent
simulations can run side by side (and in parallel test workers) without
global state.
"""

from repro.sim.engine import (
    AllOf,
    AnyOf,
    DeadlineExceeded,
    Engine,
    EngineStats,
    Interrupted,
    Process,
    SimEvent,
    SimulationError,
    Timeout,
)
from repro.sim.network import Flow, Link, Network
from repro.sim.primitives import Barrier, Mutex, Queue, Semaphore

__all__ = [
    "AllOf",
    "AnyOf",
    "Barrier",
    "DeadlineExceeded",
    "Engine",
    "EngineStats",
    "Flow",
    "Interrupted",
    "Link",
    "Mutex",
    "Network",
    "Process",
    "Queue",
    "Semaphore",
    "SimEvent",
    "SimulationError",
    "Timeout",
]
