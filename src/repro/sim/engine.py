"""Deterministic discrete-event engine with generator-based processes.

The engine maintains a priority heap of ``(time, priority, sequence)``
keys.  The sequence number breaks ties so that events scheduled at the
same simulated time fire in FIFO order, which makes every simulation run
bit-for-bit reproducible for a given seed.

A *process* is a Python generator.  Each ``yield`` hands the engine a
*waitable* — one of:

- :class:`Timeout` — resume after a fixed simulated delay,
- :class:`SimEvent` — resume when the event is triggered,
- :class:`Process` — resume when the child process terminates (a join),
- :class:`AllOf` / :class:`AnyOf` — composite conditions.

The value passed to :meth:`SimEvent.succeed` becomes the result of the
``yield`` expression; a failure raised with :meth:`SimEvent.fail` is
re-raised inside the waiting process.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

from repro.check import hooks as _check_hooks

__all__ = [
    "AllOf",
    "AnyOf",
    "DeadlineExceeded",
    "Engine",
    "EngineStats",
    "Interrupted",
    "Process",
    "SimEvent",
    "SimulationError",
    "Timeout",
]

#: Priority band for ordinary events.
PRIORITY_NORMAL = 0
#: Priority band for deferred bookkeeping (e.g. network rebalance) that
#: must run *after* every ordinary event scheduled at the same instant.
PRIORITY_LATE = 1


class SimulationError(RuntimeError):
    """Raised for violations of engine invariants (e.g. time reversal)."""


class DeadlineExceeded(TimeoutError):
    """A :meth:`Engine.timeout_guard` deadline expired before its waitable
    fired.  ``deadline`` is the absolute simulated time of expiry."""

    def __init__(self, message: str = "deadline exceeded",
                 deadline: float = float("nan")):
        super().__init__(message)
        self.deadline = deadline


class Interrupted(RuntimeError):
    """Raised inside a process that another process interrupted.

    ``cause`` carries the interrupter's reason (e.g. a scheduler's
    walltime kill).  A process may catch it and keep running; the
    waitable it was blocked on is detached, so a later firing of that
    waitable no longer resumes the process.
    """

    def __init__(self, cause: Any = None):
        super().__init__(f"interrupted: {cause!r}")
        self.cause = cause


class EngineStats:
    """Opt-in counter surface for observing simulator hot-path behavior.

    Counters are plain ints updated by the engine and the network
    allocator; reading them is free and resetting them mid-run is safe.
    ``events`` counts every executed callback, ``fastpath_events`` the
    subset served from the zero-delay ready queue (never through the
    heap).  ``rebalances`` / ``rebalances_skipped`` / ``allocator_rounds``
    are maintained by :class:`repro.sim.network.Network`: a *skipped*
    rebalance ran its advance/completion bookkeeping but skipped the
    water-filling because neither the flow-class structure nor any link
    capacity changed since the last allocation.
    """

    __slots__ = (
        "events",
        "fastpath_events",
        "rebalances",
        "rebalances_skipped",
        "allocator_rounds",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        """Zero every counter."""
        self.events = 0
        self.fastpath_events = 0
        self.rebalances = 0
        self.rebalances_skipped = 0
        self.allocator_rounds = 0

    def snapshot(self) -> dict:
        """Counters as a plain dict (for benchmark JSON / logging)."""
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        body = " ".join(f"{k}={v}" for k, v in self.snapshot().items())
        return f"<EngineStats {body}>"


class SimEvent:
    """A one-shot event processes can wait on.

    An event has three states: *pending* (initial), *triggered*
    (``succeed``/``fail`` called, callbacks scheduled) and *processed*
    (callbacks have run).  Waiting on an already-triggered event resumes
    the waiter immediately (at the current simulated time).
    """

    __slots__ = (
        "engine",
        "callbacks",
        "_value",
        "_exc",
        "_triggered",
        "_processed",
        "name",
        # Vector-clock snapshot slot for the opt-in runtime checker
        # (repro.check.runtime).  Never assigned unless a checker is
        # installed, so the uninstrumented cost is zero.
        "_clock",
    )

    def __init__(self, engine: "Engine", name: str = ""):
        self.engine = engine
        self.name = name
        self.callbacks: list[Callable[["SimEvent"], None]] = []
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._triggered = False
        self._processed = False

    @property
    def triggered(self) -> bool:
        """Whether :meth:`succeed` or :meth:`fail` has been called."""
        return self._triggered

    @property
    def ok(self) -> bool:
        """Whether the event completed without a failure."""
        return self._triggered and self._exc is None

    @property
    def value(self) -> Any:
        """The success value (``None`` until triggered)."""
        return self._value

    def succeed(self, value: Any = None, delay: float = 0.0) -> "SimEvent":
        """Trigger the event, optionally after ``delay`` simulated seconds."""
        if self._triggered:
            raise SimulationError(f"event {self.name!r} triggered twice")
        self._triggered = True
        self._value = value
        ck = _check_hooks.checker
        if ck is not None:
            ck.on_trigger(self)
        self.engine.schedule(delay, self._dispatch)
        return self

    def fail(self, exc: BaseException, delay: float = 0.0) -> "SimEvent":
        """Trigger the event with a failure re-raised in each waiter."""
        if self._triggered:
            raise SimulationError(f"event {self.name!r} triggered twice")
        self._triggered = True
        self._exc = exc
        ck = _check_hooks.checker
        if ck is not None:
            ck.on_trigger(self)
        self.engine.schedule(delay, self._dispatch)
        return self

    def _dispatch(self) -> None:
        self._processed = True
        callbacks = self.callbacks
        # An empty tuple, not a fresh list: nothing appends after
        # dispatch (late subscribers go through the _wait re-dispatch
        # path), so the allocation would be pure overhead.
        self.callbacks = ()
        for cb in callbacks:
            cb(self)

    def _wait(self, callback: Callable[["SimEvent"], None]) -> None:
        """Register ``callback``; fires immediately if already processed.

        A *triggered but not yet dispatched* event (e.g. a delayed
        ``succeed``) simply queues the callback for the pending dispatch.
        """
        if self._processed:
            # Re-dispatch for late subscribers at the current time.
            self.engine.schedule(0.0, lambda: callback(self))
        else:
            self.callbacks.append(callback)

    # Waitable protocol -------------------------------------------------
    def _as_event(self, engine: "Engine") -> "SimEvent":
        if engine is not self.engine:
            raise SimulationError("event waited on from a foreign engine")
        return self

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "triggered" if self._triggered else "pending"
        return f"<SimEvent {self.name!r} {state}>"


class Timeout:
    """Waitable that fires after a fixed simulated delay.

    ``yield Timeout(dt)`` resumes the process ``dt`` seconds later and
    evaluates to ``value``.
    """

    __slots__ = ("delay", "value")

    def __init__(self, delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout: {delay}")
        self.delay = float(delay)
        self.value = value

    def _as_event(self, engine: "Engine") -> SimEvent:
        ev = SimEvent(engine, name=f"timeout({self.delay})")
        ev.succeed(self.value, delay=self.delay)
        return ev


class AllOf:
    """Composite waitable: fires when *all* child waitables have fired.

    The result is a list of the children's values in input order.
    """

    __slots__ = ("waitables",)

    def __init__(self, waitables: Iterable[Any]):
        self.waitables = list(waitables)

    def _as_event(self, engine: "Engine") -> SimEvent:
        done = SimEvent(engine, name="all_of")
        children = [w._as_event(engine) for w in self.waitables]
        if not children:
            done.succeed([])
            return done
        remaining = [len(children)]
        values: list[Any] = [None] * len(children)

        def make_cb(i: int) -> Callable[[SimEvent], None]:
            def cb(ev: SimEvent) -> None:
                if done.triggered:
                    return
                if ev._exc is not None:
                    done.fail(ev._exc)
                    return
                values[i] = ev.value
                remaining[0] -= 1
                if remaining[0] == 0:
                    done.succeed(list(values))

            return cb

        for i, child in enumerate(children):
            child._wait(make_cb(i))
        return done


class AnyOf:
    """Composite waitable: fires when *any* child waitable fires.

    The result is a ``(index, value)`` pair for the first child to fire.
    """

    __slots__ = ("waitables",)

    def __init__(self, waitables: Iterable[Any]):
        self.waitables = list(waitables)
        if not self.waitables:
            raise ValueError("AnyOf requires at least one waitable")

    def _as_event(self, engine: "Engine") -> SimEvent:
        done = SimEvent(engine, name="any_of")
        children = [w._as_event(engine) for w in self.waitables]

        def make_cb(i: int) -> Callable[[SimEvent], None]:
            def cb(ev: SimEvent) -> None:
                if done.triggered:
                    return
                if ev._exc is not None:
                    done.fail(ev._exc)
                else:
                    done.succeed((i, ev.value))

            return cb

        for i, child in enumerate(children):
            child._wait(make_cb(i))
        return done


class Process:
    """A running simulation process wrapping a generator.

    Joining: a process is itself a waitable; ``yield child`` resumes the
    parent when ``child`` terminates and evaluates to the child's return
    value.  Unhandled exceptions escape to :meth:`Engine.run` unless some
    process joins the failing process, in which case they propagate there.
    """

    # ``_vc`` is the runtime checker's per-process vector clock; like
    # ``SimEvent._clock`` it stays unassigned unless a checker is live.
    __slots__ = ("engine", "generator", "done", "name", "_started",
                 "_waiting", "_vc")

    def __init__(self, engine: "Engine", generator: Generator, name: str = ""):
        self.engine = engine
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self.done = SimEvent(engine, name=f"{self.name}.done")
        self._started = False
        #: The event this process is currently blocked on.  Used to
        #: detach a stale subscription after :meth:`interrupt`: if the
        #: old waitable fires later, its callback no longer matches
        #: ``_waiting`` and is dropped.
        self._waiting: Optional[SimEvent] = None
        ck = _check_hooks.checker
        if ck is not None:
            ck.on_spawn(self)
        engine.schedule(0.0, self._resume, None, None)

    @property
    def alive(self) -> bool:
        """Whether the process has not yet terminated."""
        return not self.done.triggered

    @property
    def value(self) -> Any:
        """Return value of the process (``None`` until it terminates)."""
        return self.done.value

    def interrupt(self, cause: Any = None) -> bool:
        """Throw :class:`Interrupted` into the process *now*.

        Used by schedulers to enforce walltime limits on running jobs.
        The process's current wait is detached — if the waitable it was
        blocked on fires later, the process is not resumed by it.  The
        generator may catch :class:`Interrupted` (to clean up or keep
        running); an uncaught interrupt terminates the process like any
        other unhandled exception (propagating to joiners if any).

        Returns ``False`` (no-op) if the process already terminated.
        A process that has been created but not yet started defers the
        interrupt until after its first resume, preserving the rule
        that every process body starts executing at its spawn instant.
        """
        if self.done._triggered:
            return False
        if not self._started:
            # The start callback is already queued ahead of us; run the
            # interrupt right after it at the same instant.
            self.engine.schedule(0.0, self.interrupt, cause)
            return True
        self._waiting = None
        self._resume(None, cause if isinstance(cause, BaseException)
                     else Interrupted(cause))
        return True

    def _resume(self, value: Any, exc: Optional[BaseException]) -> None:
        done = self.done
        if done._triggered:
            return
        self._started = True
        ck = _check_hooks.checker
        if ck is not None:
            # Instrumented path: identical control flow with the
            # checker's resume/suspend hooks wrapped around it.
            self._resume_checked(value, exc, ck)
            return
        try:
            if exc is not None:
                waitable = self.generator.throw(exc)
            else:
                waitable = self.generator.send(value)
        except StopIteration as stop:
            done.succeed(stop.value)
            return
        except BaseException as err:  # noqa: BLE001 - propagate to joiners
            if done.callbacks:
                done.fail(err)
            else:
                raise
            return
        # Inlined SimEvent._wait — this is the hottest subscription
        # site.
        event = waitable._as_event(self.engine)
        self._waiting = event
        if event._processed:
            self.engine.schedule(0.0, self._on_event, event)
        else:
            event.callbacks.append(self._on_event)

    def _resume_checked(self, value: Any, exc: Optional[BaseException],
                        ck: Any) -> None:
        done = self.done
        ck.on_resume(self)
        try:
            try:
                if exc is not None:
                    waitable = self.generator.throw(exc)
                else:
                    waitable = self.generator.send(value)
            except StopIteration as stop:
                done.succeed(stop.value)
                return
            except BaseException as err:  # noqa: BLE001 - propagate to joiners
                if done.callbacks:
                    done.fail(err)
                else:
                    raise
                return
            event = waitable._as_event(self.engine)
            self._waiting = event
            if event._processed:
                self.engine.schedule(0.0, self._on_event, event)
            else:
                event.callbacks.append(self._on_event)
        finally:
            ck.on_suspend(self)

    def _on_event(self, event: SimEvent) -> None:
        if event is not self._waiting:
            # Stale subscription: the process was interrupted while
            # blocked on this event and has moved on (or died).
            return
        self._waiting = None
        ck = _check_hooks.checker
        if ck is not None:
            ck.on_wakeup(self, event)
            self._resume(event._value, event._exc)
            return
        # Unchecked fast path: _resume's body inlined (this is the
        # hottest call chain in the simulator — one wakeup per flow
        # completion — and the extra frame was measurable).
        done = self.done
        if done._triggered:
            return
        self._started = True
        try:
            if event._exc is not None:
                waitable = self.generator.throw(event._exc)
            else:
                waitable = self.generator.send(event._value)
        except StopIteration as stop:
            done.succeed(stop.value)
            return
        except BaseException as err:  # noqa: BLE001 - propagate to joiners
            if done.callbacks:
                done.fail(err)
            else:
                raise
            return
        nxt = waitable._as_event(self.engine)
        self._waiting = nxt
        if nxt._processed:
            self.engine.schedule(0.0, self._on_event, nxt)
        else:
            nxt.callbacks.append(self._on_event)

    # Waitable protocol -------------------------------------------------
    def _as_event(self, engine: "Engine") -> SimEvent:
        if engine is not self.engine:
            raise SimulationError("process joined from a foreign engine")
        return self.done

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "alive" if self.alive else "done"
        return f"<Process {self.name!r} {state}>"


class Engine:
    """Deterministic discrete-event simulation engine.

    All times are in seconds of *simulated* time.  The engine is strictly
    single-threaded: determinism comes from the total ordering
    ``(time, priority, sequence)`` on scheduled callbacks.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        self._heap: list[tuple[float, int, int, Callable, tuple]] = []
        #: Zero-delay callbacks at the current instant whose priority is
        #: non-decreasing: they bypass the heap entirely (no tuple key,
        #: no sift) and are merged back into (time, priority, sequence)
        #: order by the run loop.
        self._ready: deque[tuple[int, int, Callable, tuple]] = deque()
        #: Hot-path counters (events, network rebalances, ...).
        self.stats = EngineStats()

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def executed(self) -> int:
        """Number of callbacks executed so far (observability / tests)."""
        return self.stats.events

    def schedule(
        self,
        delay: float,
        callback: Callable,
        *args: Any,
        priority: int = PRIORITY_NORMAL,
    ) -> None:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        Zero-delay callbacks (the dominant case: event dispatch, process
        starts, rebalance batching) take a fast path onto a FIFO ready
        queue instead of the heap whenever their priority keeps the
        queue's key order intact; the run loop interleaves the two
        sources in exact ``(time, priority, sequence)`` order, so the
        observable schedule is identical to a pure-heap engine.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: {delay}")
        self._seq += 1
        if delay == 0.0:
            # Fast path: append iff the queue stays sorted by
            # (time, priority); sequence numbers are monotonic, so FIFO
            # order within the queue is already key order.
            ready = self._ready
            if ready:
                tail = ready[-1]
                if self._now > tail[0] or (
                    self._now == tail[0] and priority >= tail[1]
                ):
                    ready.append(
                        (self._now, priority, self._seq, callback, args)
                    )
                    return
            else:
                ready.append((self._now, priority, self._seq, callback, args))
                return
        heapq.heappush(
            self._heap, (self._now + delay, priority, self._seq, callback, args)
        )

    def event(self, name: str = "") -> SimEvent:
        """Create a fresh pending :class:`SimEvent`."""
        return SimEvent(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a :class:`Timeout` waitable (convenience)."""
        return Timeout(delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start a new process executing ``generator``."""
        return Process(self, generator, name=name)

    def timeout_guard(
        self,
        waitable: Any,
        timeout: float,
        exc: Optional[BaseException] = None,
    ) -> SimEvent:
        """Bound any wait by a deadline.

        Returns an event that mirrors ``waitable``'s outcome (value or
        failure) if it fires within ``timeout`` simulated seconds, and
        otherwise fails with ``exc`` (default: :class:`DeadlineExceeded`).
        The underlying waitable is *not* cancelled — a resource-granting
        event (semaphore permit, staging reservation) that fires after
        the deadline still grants the resource, so guarded acquirers
        must cancel or release on :class:`DeadlineExceeded` (see
        ``StagingBuffer.reserve`` for the pattern).

        Tie-break: a waitable firing at exactly the deadline instant
        wins or loses deterministically by schedule order — the deadline
        callback is scheduled *now*, so an inner event triggered before
        this call loses the race and the guard still mirrors it.
        """
        if timeout < 0:
            raise ValueError(f"negative timeout_guard timeout: {timeout}")
        inner = waitable._as_event(self)
        done = SimEvent(self, name="timeout_guard")
        deadline = self._now + timeout

        def on_inner(ev: SimEvent) -> None:
            if done._triggered:
                return
            if ev._exc is not None:
                done.fail(ev._exc)
            else:
                done.succeed(ev._value)

        def on_deadline() -> None:
            if done._triggered:
                return
            done.fail(
                exc if exc is not None
                else DeadlineExceeded(
                    f"wait on {inner.name!r} exceeded {timeout:.6g}s",
                    deadline=deadline,
                )
            )

        inner._wait(on_inner)
        self.schedule(timeout, on_deadline)
        return done

    def run(self, until: Optional[float] = None) -> float:
        """Run until the event queue drains or ``until`` is reached.

        Returns the simulated time at which execution stopped.

        ``until`` semantics (see also :meth:`peek`): the first pending
        callback whose timestamp is *strictly after* ``until`` is peeked
        but **not** popped — it stays queued for a later ``run`` call,
        it does not count toward ``executed``/``stats.events``, and
        ``peek()`` still reports its time.  The clock is then set to
        exactly ``until`` (callbacks scheduled *at* ``until`` do run).
        If the queue drains first, the clock stays at the last executed
        callback's time and ``until`` is not reached.
        """
        heap = self._heap
        ready = self._ready
        pop = heapq.heappop
        popleft = ready.popleft
        stats = self.stats
        if until is None:
            # Common case: no horizon check per event.  ``now`` mirrors
            # ``self._now`` locally (callbacks never write the clock).
            now = self._now
            while ready or heap:
                if ready and (not heap or ready[0] <= heap[0]):
                    entry = popleft()
                    stats.fastpath_events += 1
                else:
                    entry = pop(heap)
                time = entry[0]
                if time < now - 1e-12:
                    raise SimulationError("event heap time reversal")
                self._now = now = time
                entry[3](*entry[4])
                stats.events += 1
            ck = _check_hooks.checker
            if ck is not None:
                ck.on_drained(self)
            return self._now
        while ready or heap:
            if ready and (not heap or ready[0] <= heap[0]):
                entry = ready[0]
                from_ready = True
            else:
                entry = heap[0]
                from_ready = False
            time = entry[0]
            if time > until:
                self._now = until
                return self._now
            if from_ready:
                popleft()
                stats.fastpath_events += 1
            else:
                pop(heap)
            if time < self._now - 1e-12:
                raise SimulationError("event heap time reversal")
            self._now = time
            entry[3](*entry[4])
            stats.events += 1
        ck = _check_hooks.checker
        if ck is not None:
            ck.on_drained(self)
        return self._now

    def run_process(self, generator: Generator, name: str = "") -> Any:
        """Start ``generator`` as a process, run to completion, return its value."""
        proc = self.process(generator, name=name)
        self.run()
        if proc.alive:
            raise SimulationError(
                f"process {proc.name!r} deadlocked: event heap drained "
                f"at t={self._now} with the process still waiting"
            )
        if proc.done._exc is not None:
            raise proc.done._exc
        return proc.value

    def peek(self) -> float:
        """Time of the next scheduled callback (``inf`` if none).

        Purely observational: the callback is not popped.  After
        ``run(until=...)`` stopped early, this is the timestamp of the
        peeked-but-unpopped callback that ``run`` left queued.
        """
        ready = self._ready
        heap = self._heap
        if ready:
            t = ready[0][0]
            return heap[0][0] if heap and heap[0][0] < t else t
        return heap[0][0] if heap else float("inf")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        pending = len(self._heap) + len(self._ready)
        return f"<Engine t={self._now:.6g} pending={pending}>"
