"""Reference (slow-path) max-min fair allocator — correctness oracle.

This module is a frozen copy of the original per-flow water-filling
implementation of :mod:`repro.sim.network`.  The optimized allocator in
``network.py`` (flow-class aggregation + incremental rebalancing) must
produce **bit-identical** simulated timestamps and rates to this one;
``tests/test_sim_network_fastpath.py`` cross-checks the two over
randomized mixed workloads.

Do not optimize this module: its value is that every floating-point
operation happens exactly as it did before the fast path landed.  The
public classes (``Link``, ``Flow``, ``Network``) mirror the optimized
module's API so the same driver code can run against either.

Allocation model (shared with the fast path): rates are assigned by
max-min fairness with caps (progressive filling / water-filling) — all
flows grow uniformly until either a link saturates (its flows freeze)
or a flow hits its own cap (it freezes).
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Optional, Sequence

from repro.sim.engine import PRIORITY_LATE, Engine, SimEvent

__all__ = ["Flow", "Link", "Network"]

#: Relative tolerance for "link saturated" / "cap reached" tests.
_REL_EPS = 1e-9
#: Absolute byte tolerance below which a flow counts as complete.
_BYTE_EPS = 1e-6


class Link:
    """A shared bandwidth resource (NIC, PFS backend, memory bus).

    Capacity may be changed at runtime (used by the contention model);
    in-flight flows are re-balanced from the current instant onward.
    """

    __slots__ = ("name", "_capacity", "_network")

    def __init__(self, name: str, capacity: float):
        if capacity < 0:
            raise ValueError(f"link {name!r}: negative capacity {capacity}")
        self.name = name
        self._capacity = float(capacity)
        self._network: Optional["Network"] = None

    @property
    def capacity(self) -> float:
        """Capacity in bytes/second."""
        return self._capacity

    def set_capacity(self, capacity: float) -> None:
        """Change the capacity, re-balancing any in-flight flows."""
        if capacity < 0:
            raise ValueError(f"link {self.name!r}: negative capacity {capacity}")
        self._capacity = float(capacity)
        if self._network is not None:
            self._network._mark_dirty()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Link {self.name!r} {self._capacity:.3g} B/s>"


class Flow:
    """A single data transfer across a path of links.

    ``done`` fires with the flow itself as value when the last byte has
    moved.  ``elapsed`` and ``achieved_rate`` are populated on
    completion and used to derive the paper's "aggregate bandwidth"
    metrics.
    """

    __slots__ = (
        "nbytes",
        "remaining",
        "links",
        "cap",
        "rate",
        "done",
        "tag",
        "started_at",
        "finished_at",
    )

    def __init__(
        self,
        engine: Engine,
        nbytes: float,
        links: Sequence[Link],
        cap: float,
        tag: Any,
    ):
        self.nbytes = float(nbytes)
        self.remaining = float(nbytes)
        self.links = tuple(links)
        self.cap = float(cap)
        self.rate = 0.0
        self.tag = tag
        self.done = engine.event(name=f"flow({tag})")
        self.started_at = engine.now
        self.finished_at: Optional[float] = None

    @property
    def elapsed(self) -> float:
        """Transfer duration in seconds (``nan`` until complete)."""
        if self.finished_at is None:
            return float("nan")
        return self.finished_at - self.started_at

    @property
    def achieved_rate(self) -> float:
        """Average achieved bytes/second over the whole transfer."""
        dt = self.elapsed
        if not dt:
            return float("inf")
        return self.nbytes / dt

    # Waitable protocol: ``yield flow`` waits for completion.
    def _as_event(self, engine: Engine) -> SimEvent:
        return self.done

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Flow {self.tag!r} {self.nbytes:.3g}B "
            f"remaining={self.remaining:.3g} rate={self.rate:.3g}>"
        )


class Network:
    """Fluid-flow network: manages active flows and their fair rates."""

    def __init__(self, engine: Engine):
        self.engine = engine
        self._active: list[Flow] = []
        self._last_update = 0.0
        self._dirty = False
        self._completion_token = 0
        #: Completed-flow count (observability / tests).
        self.completed = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def transfer(
        self,
        nbytes: float,
        links: Iterable[Link],
        cap: float = math.inf,
        latency: float = 0.0,
        tag: Any = None,
    ) -> Flow:
        """Start a transfer of ``nbytes`` over ``links``.

        ``cap`` bounds this flow's rate regardless of link headroom
        (bytes/second).  ``latency`` is a fixed startup delay (request
        setup, metadata round-trip) before any byte moves.  Returns the
        :class:`Flow`, whose ``done`` event fires on completion; a flow
        is itself waitable, so process code reads naturally::

            flow = network.transfer(nbytes, [nic, pfs])
            yield flow
        """
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        if cap <= 0:
            raise ValueError(f"flow cap must be positive, got {cap}")
        links = list(links)
        for link in links:
            if link._network is None:
                link._network = self
            elif link._network is not self:
                raise RuntimeError(f"link {link.name!r} belongs to another network")
        flow = Flow(self.engine, nbytes, links, cap, tag)
        if nbytes <= _BYTE_EPS:
            if latency > 0.0:
                self.engine.schedule(latency, self._finish_now, flow)
            else:
                self._finish_now(flow)
            return flow
        if latency > 0.0:
            self.engine.schedule(latency, self._activate, flow)
        else:
            self._activate(flow)
        return flow

    def link_throughput(self, link: Link) -> float:
        """Instantaneous aggregate rate through ``link`` (bytes/second)."""
        self._settle()
        return sum(f.rate for f in self._active if link in f.links)

    @property
    def active_flows(self) -> int:
        """Number of in-flight flows."""
        self._settle()
        return len(self._active)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _finish_now(self, flow: Flow) -> None:
        flow.started_at = min(flow.started_at, self.engine.now)
        flow.finished_at = self.engine.now
        flow.remaining = 0.0
        self.completed += 1
        flow.done.succeed(flow)

    def _activate(self, flow: Flow) -> None:
        flow.started_at = self.engine.now
        self._active.append(flow)
        self._mark_dirty()

    def _mark_dirty(self) -> None:
        if not self._dirty:
            self._dirty = True
            # Late priority: batch all arrivals/changes at this instant.
            self.engine.schedule(0.0, self._rebalance, priority=PRIORITY_LATE)

    def _settle(self) -> None:
        """Force a pending rebalance to run synchronously (for queries)."""
        if self._dirty:
            self._rebalance()

    def _advance(self) -> None:
        now = self.engine.now
        dt = now - self._last_update
        if dt > 0.0:
            for flow in self._active:
                if flow.rate > 0.0:
                    flow.remaining = max(0.0, flow.remaining - flow.rate * dt)
        self._last_update = now

    def _rebalance(self) -> None:
        self._dirty = False
        self._advance()
        self._complete_finished()
        self._allocate()
        self._schedule_completion()

    def _complete_finished(self) -> None:
        # A flow is complete when its residual is negligible relative to
        # its size, or when draining it needs a time step too small to
        # represent at the current simulated time (float resolution) —
        # otherwise zero-progress completion events would loop forever.
        now = self.engine.now
        time_eps = max(1e-12, abs(now) * 1e-12)
        finished = [
            f
            for f in self._active
            if f.remaining <= max(_BYTE_EPS, f.nbytes * 1e-9)
            or (f.rate > 0.0 and f.remaining / f.rate <= time_eps)
        ]
        if not finished:
            return
        done_set = set(map(id, finished))
        self._active = [f for f in self._active if id(f) not in done_set]
        for flow in finished:
            flow.finished_at = self.engine.now
            flow.remaining = 0.0
            self.completed += 1
            flow.done.succeed(flow)

    def _allocate(self) -> None:
        """Max-min fair rates with per-flow caps (progressive filling)."""
        flows = self._active
        for f in flows:
            f.rate = 0.0
        if not flows:
            return
        # Link -> list of its unfrozen flows.
        link_flows: dict[Link, list[Flow]] = {}
        for f in flows:
            for link in f.links:
                link_flows.setdefault(link, []).append(f)
        residual = {link: link.capacity for link in link_flows}
        unfrozen = set(map(id, flows))
        flows_by_id = {id(f): f for f in flows}
        # Flows on a zero-capacity link can never move: freeze at rate 0.
        for link, fs in link_flows.items():
            if link.capacity <= 0.0:
                for f in fs:
                    unfrozen.discard(id(f))

        while unfrozen:
            inc = math.inf
            for link, fs in link_flows.items():
                n = sum(1 for f in fs if id(f) in unfrozen)
                if n:
                    inc = min(inc, residual[link] / n)
            for fid in unfrozen:
                f = flows_by_id[fid]
                inc = min(inc, f.cap - f.rate)
            if inc is math.inf:
                # No finite constraint: flows are effectively unbounded.
                for fid in unfrozen:
                    flows_by_id[fid].rate = math.inf
                break
            inc = max(inc, 0.0)
            for fid in unfrozen:
                flows_by_id[fid].rate += inc
            for link, fs in link_flows.items():
                n = sum(1 for f in fs if id(f) in unfrozen)
                residual[link] -= inc * n

            frozen_now: set[int] = set()
            for fid in unfrozen:
                f = flows_by_id[fid]
                if f.rate >= f.cap * (1.0 - _REL_EPS):
                    frozen_now.add(fid)
            for link, fs in link_flows.items():
                if residual[link] <= link.capacity * _REL_EPS:
                    for f in fs:
                        if id(f) in unfrozen:
                            frozen_now.add(id(f))
            if not frozen_now:
                # Numerical stall safeguard; freeze everything.
                break
            unfrozen -= frozen_now

    def _schedule_completion(self) -> None:
        self._completion_token += 1
        token = self._completion_token
        next_dt = math.inf
        for f in self._active:
            if f.rate > 0.0:
                next_dt = min(next_dt, f.remaining / f.rate)
        if next_dt is math.inf:
            return
        self.engine.schedule(
            max(0.0, next_dt), self._on_completion, token, priority=PRIORITY_LATE
        )

    def _on_completion(self, token: int) -> None:
        if token != self._completion_token:
            return  # superseded by a newer rebalance
        self._rebalance()
