"""Micro-benchmarks calibrating the transactional-overhead model (§III-B1).

"We measured the bandwidth of a memcpy transfer with varying sizes of
data on a single node on both systems using a micro-benchmark."  Each
function runs a tiny standalone simulation on one node of the given
machine and returns (size, time, bandwidth) samples, from which
:class:`~repro.model.estimators.TransactOverheadModel` is fitted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Sequence

from repro.model.units import Bytes, Rate, Seconds
from repro.sim.engine import Engine
from repro.platform.cluster import Cluster
from repro.platform.spec import MachineSpec

__all__ = ["MicrobenchSample", "gpu_transfer_microbench", "memcpy_microbench"]

MiB = float(1 << 20)

#: Default size sweep: 1 MiB .. 512 MiB in powers of two.
DEFAULT_SIZES = tuple(2**k * MiB for k in range(0, 10))


@dataclass(frozen=True)
class MicrobenchSample:
    """One measured copy: request size, elapsed time, effective rate."""

    nbytes: Bytes
    seconds: Seconds
    bandwidth: Rate


def memcpy_microbench(
    machine: MachineSpec, sizes: Sequence[float] = DEFAULT_SIZES
) -> list[MicrobenchSample]:
    """Single-node host memcpy sweep on ``machine``."""
    return _sweep(machine, sizes, kind="memcpy")


def gpu_transfer_microbench(
    machine: MachineSpec,
    sizes: Sequence[float] = DEFAULT_SIZES,
    pinned: bool = True,
) -> list[MicrobenchSample]:
    """Single-node device↔host copy sweep (pinned or pageable)."""
    if machine.node.gpu_link is None:
        raise ValueError(f"machine {machine.name!r} has no GPUs")
    return _sweep(machine, sizes, kind="gpu", pinned=pinned)


def _sweep(machine: MachineSpec, sizes: Sequence[float], kind: str,
           pinned: bool = True) -> list[MicrobenchSample]:
    samples: list[MicrobenchSample] = []
    for nbytes in sizes:
        if nbytes <= 0:
            raise ValueError(f"non-positive microbench size: {nbytes}")
        engine = Engine()
        cluster = Cluster(engine, machine, nodes=1)
        node = cluster.nodes[0]

        def copy_once() -> Generator[Any, Any, float]:
            t0 = engine.now
            if kind == "memcpy":
                flow = cluster.memcpy(node, nbytes)
            else:
                flow = cluster.gpu_transfer(node, nbytes, pinned=pinned)
            yield flow
            return engine.now - t0

        elapsed = engine.run_process(copy_once())
        samples.append(
            MicrobenchSample(
                nbytes=float(nbytes),
                seconds=elapsed,
                bandwidth=float(nbytes) / elapsed if elapsed > 0 else float("inf"),
            )
        )
    return samples
