"""Unit-carrying type aliases for the performance model (Eqs. 1-5).

The paper's model mixes three physical dimensions — data sizes in
bytes, times in seconds and I/O rates in bytes/second (Eq. 3 is
``t_io = data_size / f_io_rate``).  These :data:`typing.Annotated`
aliases document which is which on the :mod:`repro.model` public
surface, and the ``repro check --flow`` unit rules (RC501-RC503) read
them to seed their dimension inference: a parameter annotated
``Bytes`` *is* bytes to the checker, no naming heuristic needed.

At runtime every alias is plain ``float`` — annotations add no
overhead and no import cycles (this module is stdlib-only).
"""

from __future__ import annotations

from typing import Annotated

__all__ = ["Bytes", "Dimensionless", "Rate", "Seconds"]

#: A data size in bytes (aggregate or per rank; context says which).
Bytes = Annotated[float, "bytes"]

#: A duration or timestamp in simulated seconds.
Seconds = Annotated[float, "seconds"]

#: An I/O or copy rate in bytes per second.
Rate = Annotated[float, "rate"]

#: A pure number (counts, ratios, r-squared values, efficiencies).
Dimensionless = Annotated[float, "dimless"]
