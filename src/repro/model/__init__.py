"""The paper's performance model (§III) — the core contribution.

Components map one-to-one to the paper:

- :mod:`repro.model.epoch` — the iterative-application time model,
  Eq. 1 (app time), Eq. 2a (sync epoch), Eq. 2b (async epoch), Eq. 3
  (I/O time), and the three Fig. 1 scenarios.
- :mod:`repro.model.regression` — linear least squares
  ``β=(XᵀX)⁻¹XᵀY`` (Eq. 4) over linear or linear-log features, and the
  coefficient of determination r² (Eq. 5).
- :mod:`repro.model.history` — the measurement history fed by past I/O
  requests (data size, #ranks, aggregate rate).
- :mod:`repro.model.estimators` — the three cost estimators: compute
  time (weighted average of past iterations), transactional overhead
  (memcpy/GPU bandwidth curves fitted from micro-benchmarks), and the
  I/O rate (regression over the history).
- :mod:`repro.model.advisor` — the sync-vs-async decision and the
  Fig. 2 feedback loop (:class:`~repro.model.advisor.AdaptiveVOL`),
  which wraps the two VOL connectors and switches modes at runtime.
- :mod:`repro.model.microbench` — the §III-B1 micro-benchmarks that
  calibrate the transactional-overhead estimator.
"""

from repro.model.epoch import (
    EpochCosts,
    Scenario,
    app_time,
    async_epoch_time,
    classify_scenario,
    io_time,
    speedup,
    sync_epoch_time,
)
from repro.model.regression import LinearLeastSquares, pearson_r2, r2_score
from repro.model.history import IORateSample, MeasurementHistory
from repro.model.estimators import (
    ComputeTimeModel,
    IORateModel,
    LinearTrendComputeModel,
    TransactOverheadModel,
)
from repro.model.advisor import AdaptiveVOL, Advisor, Decision, Mode
from repro.model.microbench import (
    gpu_transfer_microbench,
    memcpy_microbench,
)
from repro.model.units import Bytes, Dimensionless, Rate, Seconds

__all__ = [
    "AdaptiveVOL",
    "Advisor",
    "Bytes",
    "ComputeTimeModel",
    "Decision",
    "Dimensionless",
    "EpochCosts",
    "IORateModel",
    "IORateSample",
    "LinearTrendComputeModel",
    "LinearLeastSquares",
    "MeasurementHistory",
    "Mode",
    "Rate",
    "Scenario",
    "Seconds",
    "TransactOverheadModel",
    "app_time",
    "async_epoch_time",
    "classify_scenario",
    "gpu_transfer_microbench",
    "io_time",
    "memcpy_microbench",
    "pearson_r2",
    "r2_score",
    "speedup",
    "sync_epoch_time",
]
