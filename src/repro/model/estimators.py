"""The three cost estimators of the empirical model (paper §III-B).

- :class:`ComputeTimeModel` — "We measure the computation time directly
  in the application and use a weighted average over the measurements
  taken in previous iterations to estimate the computation time of the
  next iteration."
- :class:`TransactOverheadModel` — "We estimate the transactional
  overhead by measuring data copy costs between different memory
  buffers"; fitted from micro-benchmark samples as the affine time law
  ``t(s) = s/peak + setup`` (equivalently the saturating bandwidth
  curve), constant-bandwidth above ~32 MB.
- :class:`IORateModel` — Eq. 4's regression of aggregate I/O rate on
  (data size, #ranks) over the measurement history, choosing between
  linear and linear-log features by r².
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.model.history import MeasurementHistory
from repro.model.regression import LinearLeastSquares
from repro.model.units import Bytes, Rate, Seconds
from repro.platform.memory import BandwidthCurve, MemcpySpec

__all__ = ["ComputeTimeModel", "IORateModel", "LinearTrendComputeModel",
           "TransactOverheadModel"]


class ComputeTimeModel:
    """Exponentially-weighted average of past computation phases.

    ``estimate()`` predicts the next iteration's ``t_comp``; newer
    observations carry more weight (decay factor per observation).
    """

    def __init__(self, decay: float = 0.7) -> None:
        if not 0.0 < decay <= 1.0:
            raise ValueError(f"decay must be in (0,1], got {decay}")
        self.decay = decay
        self._value: Optional[float] = None
        self.n_observations = 0

    def observe(self, t_comp: Seconds) -> None:
        """Record one measured computation phase."""
        if t_comp < 0:
            raise ValueError(f"negative compute time: {t_comp}")
        if self._value is None:
            self._value = t_comp
        else:
            self._value = self.decay * t_comp + (1.0 - self.decay) * self._value
        self.n_observations += 1

    def estimate(self) -> Seconds:
        """Predicted next computation time."""
        if self._value is None:
            raise RuntimeError("no compute-time observations yet")
        return self._value

    @property
    def ready(self) -> bool:
        """Whether at least one observation exists."""
        return self._value is not None


class LinearTrendComputeModel:
    """Compute-time estimator with drift tracking.

    The paper notes its weighted average "can be replaced with advanced
    models [1], [2]" (§III-B).  This variant fits ``t_comp ~ a·k + b``
    over the last ``window`` iterations and extrapolates one step ahead,
    which tracks steadily growing/shrinking computation phases (e.g. AMR
    refinement growth) far better than an EWMA that always lags.
    Falls back to the plain mean until two observations exist.
    """

    def __init__(self, window: int = 16) -> None:
        if window < 2:
            raise ValueError(f"window must be >= 2, got {window}")
        self.window = window
        self._times: list[float] = []
        self.n_observations = 0

    def observe(self, t_comp: Seconds) -> None:
        """Record one measured computation phase."""
        if t_comp < 0:
            raise ValueError(f"negative compute time: {t_comp}")
        self._times.append(t_comp)
        if len(self._times) > self.window:
            del self._times[0]
        self.n_observations += 1

    @property
    def ready(self) -> bool:
        """Whether at least one observation exists."""
        return bool(self._times)

    def estimate(self) -> Seconds:
        """Extrapolated next computation time (clamped at >= 0)."""
        if not self._times:
            raise RuntimeError("no compute-time observations yet")
        n = len(self._times)
        if n == 1:
            return self._times[0]
        k = np.arange(n, dtype=float)
        fit = LinearLeastSquares(transform="linear", intercept=True).fit(
            k.reshape(-1, 1), np.asarray(self._times)
        )
        predicted = float(fit.predict([[float(n)]])[0])
        return max(0.0, predicted)


class TransactOverheadModel:
    """Transactional-overhead estimator from copy micro-benchmarks.

    Fits ``t(s) = s/peak + setup`` by ordinary least squares on
    (size, time) samples; ``estimate(nbytes)`` is then the predicted
    blocking copy time, and ``bandwidth(nbytes)`` the effective rate
    (constant above the saturation size, per §III-B1).
    """

    def __init__(self) -> None:
        self.peak: Optional[float] = None
        self.setup: Optional[float] = None
        self.r2: Optional[float] = None

    @classmethod
    def from_samples(cls, sizes: Sequence[float], times: Sequence[float]
                     ) -> "TransactOverheadModel":
        """Fit from micro-benchmark (bytes, seconds) samples."""
        sizes = np.asarray(sizes, dtype=float)
        times = np.asarray(times, dtype=float)
        if sizes.size != times.size:
            raise ValueError("sizes and times must have the same length")
        if sizes.size < 2:
            raise ValueError("need at least two samples to fit")
        model = cls()
        fit = LinearLeastSquares(transform="linear", intercept=True).fit(
            sizes.reshape(-1, 1), times
        )
        slope, intercept = float(fit.beta[0]), float(fit.beta[1])
        if slope <= 0:
            raise ValueError(f"non-physical fit: slope {slope} <= 0")
        model.peak = 1.0 / slope
        model.setup = max(0.0, intercept)
        model.r2 = fit.r2
        return model

    @classmethod
    def from_curve(cls, curve: BandwidthCurve) -> "TransactOverheadModel":
        """Build directly from a known bandwidth curve (oracle variant)."""
        model = cls()
        model.peak = curve.peak
        model.setup = curve.s0 / curve.peak
        model.r2 = 1.0
        return model

    @classmethod
    def from_memcpy_spec(cls, spec: MemcpySpec) -> "TransactOverheadModel":
        """Oracle variant from a node's memcpy specification."""
        return cls.from_curve(spec.per_copy)

    def estimate(self, nbytes: Bytes) -> Seconds:
        """Predicted blocking copy time for one ``nbytes`` request."""
        if self.peak is None or self.setup is None:
            raise RuntimeError("estimate() before fitting")
        if nbytes < 0:
            raise ValueError(f"negative size: {nbytes}")
        return nbytes / self.peak + self.setup

    def bandwidth(self, nbytes: Bytes) -> Rate:
        """Effective copy bandwidth for one ``nbytes`` request."""
        t = self.estimate(nbytes)
        if t <= 0.0:
            return float("inf")
        return nbytes / t


class IORateModel:
    """Eq. 4 regression of aggregate I/O rate on (data size, #ranks).

    Fits both the linear and linear-log feature maps over the history
    and keeps the better one by r² ("We found linear regression to be
    sufficient given the accuracy of our model").
    """

    def __init__(self, history: MeasurementHistory, mode: str = "sync",
                 op: Optional[str] = None, min_samples: int = 3) -> None:
        if mode not in ("sync", "async"):
            raise ValueError(f"bad mode {mode!r}")
        if min_samples < 2:
            raise ValueError("min_samples must be >= 2")
        self.history = history
        self.mode = mode
        self.op = op
        self.min_samples = min_samples
        self._fit: Optional[LinearLeastSquares] = None

    @property
    def ready(self) -> bool:
        """Whether the history holds enough samples to fit."""
        return len(self.history.select(mode=self.mode, op=self.op)) >= self.min_samples

    def refit(self) -> "IORateModel":
        """(Re)fit against the current history; returns self."""
        X, Y = self.history.matrices(mode=self.mode, op=self.op)
        if X.shape[0] < self.min_samples:
            raise RuntimeError(
                f"need {self.min_samples} samples, history has {X.shape[0]} "
                f"for mode={self.mode!r} op={self.op!r}"
            )
        candidates = []
        for transform in ("linear", "linear-log"):
            try:
                fit = LinearLeastSquares(transform=transform).fit(X, Y)
            except ValueError:
                continue
            candidates.append(fit)
        if not candidates:
            raise RuntimeError("no regression candidate could be fitted")
        self._fit = max(candidates, key=lambda f: f.r2)
        return self

    @property
    def r2(self) -> float:
        """Goodness of fit of the selected regression (Eq. 5)."""
        if self._fit is None:
            raise RuntimeError("r2 before refit()")
        return self._fit.r2

    @property
    def transform(self) -> str:
        """Which feature map won: 'linear' or 'linear-log'."""
        if self._fit is None:
            raise RuntimeError("transform before refit()")
        return self._fit.transform

    def estimate_rate(self, data_size: Bytes, nranks: int) -> Rate:
        """Predicted aggregate I/O rate (bytes/second), floored at >0."""
        if self._fit is None:
            self.refit()
        assert self._fit is not None
        rate = float(self._fit.predict([[data_size, float(nranks)]])[0])
        return max(rate, 1.0)

    def estimate_time(self, data_size: Bytes, nranks: int) -> Seconds:
        """Eq. 3: predicted I/O time for the request."""
        return data_size / self.estimate_rate(data_size, nranks)
