"""The iterative-application epoch model (paper §III-A).

Equations reproduced verbatim:

- Eq. 1:  ``t_app = t_init + Σ t_epoch + t_term``
- Eq. 2a: ``t_sync_epoch = t_io + t_comp``
- Eq. 2b: ``t_async_epoch = max(t_comp, t_io - t_comp) + t_transact``
- Eq. 3:  ``t_io = data_size / f_io_rate``

Eq. 2b encodes the pipeline: during epoch *k*'s computation, the
background thread drains epoch *k-1*'s I/O; if computation is shorter
than I/O, the remaining ``t_io - t_comp`` stalls the next submission.

Fig. 1's three scenarios fall out of the same expression:

- **ideal** (1a): ``t_comp >= t_io`` — I/O fully hidden.
- **partial** (1b): ``t_comp < t_io`` but async still wins.
- **slowdown** (1c): ``t_comp <= t_transact`` — "no amount of overlap
  will amortize the cost of introduced transactional overhead".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Sequence, Union

from repro.model.units import Bytes, Rate, Seconds

__all__ = [
    "EpochCosts",
    "Scenario",
    "app_time",
    "async_epoch_time",
    "classify_scenario",
    "io_time",
    "speedup",
    "sync_epoch_time",
]


class Scenario(enum.Enum):
    """The three Fig. 1 overlap scenarios."""

    IDEAL = "ideal"
    PARTIAL = "partial"
    SLOWDOWN = "slowdown"


@dataclass(frozen=True)
class EpochCosts:
    """The three per-epoch costs of the model."""

    t_comp: Seconds
    t_io: Seconds
    t_transact: Seconds = 0.0

    def __post_init__(self) -> None:
        if min(self.t_comp, self.t_io, self.t_transact) < 0:
            raise ValueError(f"negative epoch cost in {self}")


def io_time(data_size: Bytes, io_rate: Rate) -> Seconds:
    """Eq. 3: ``t_io = data_size / f_io_rate``."""
    if data_size < 0:
        raise ValueError(f"negative data size: {data_size}")
    if io_rate <= 0:
        raise ValueError(f"io_rate must be positive, got {io_rate}")
    return data_size / io_rate


def sync_epoch_time(costs: EpochCosts) -> Seconds:
    """Eq. 2a: computation stalls for the full I/O phase."""
    return costs.t_io + costs.t_comp


def async_epoch_time(costs: EpochCosts) -> Seconds:
    """Eq. 2b: overlapped I/O plus the transactional overhead."""
    return max(costs.t_comp, costs.t_io - costs.t_comp) + costs.t_transact


def speedup(costs: EpochCosts) -> float:
    """Predicted sync/async epoch-time ratio (>1 means async wins)."""
    return sync_epoch_time(costs) / async_epoch_time(costs)


def classify_scenario(costs: EpochCosts) -> Scenario:
    """Which Fig. 1 timeline the costs correspond to."""
    if async_epoch_time(costs) >= sync_epoch_time(costs):
        return Scenario.SLOWDOWN
    if costs.t_comp >= costs.t_io:
        return Scenario.IDEAL
    return Scenario.PARTIAL


def app_time(
    epochs: Union[Sequence[EpochCosts], Iterable[EpochCosts]],
    mode: str,
    t_init: Seconds = 0.0,
    t_term: Seconds = 0.0,
    include_final_drain: bool = False,
) -> Seconds:
    """Eq. 1: total application time under ``mode`` ('sync' | 'async').

    Follows the paper exactly: ``t_app = t_init + Σ t_epoch + t_term``
    with Eq. 2a/2b epoch times.  ``include_final_drain=True`` adds the
    residual transfer of the last asynchronous epoch (which has no
    following computation to hide behind; ``H5Fclose`` waits for it) —
    an effect the paper's model neglects but the simulator exhibits.
    """
    if mode not in ("sync", "async"):
        raise ValueError(f"mode must be 'sync' or 'async', got {mode!r}")
    if t_init < 0 or t_term < 0:
        raise ValueError("t_init/t_term must be non-negative")
    epochs = list(epochs)
    total = t_init + t_term
    if mode == "sync":
        return total + sum(sync_epoch_time(c) for c in epochs)
    for costs in epochs:
        total += async_epoch_time(costs)
    if include_final_drain and epochs:
        last = epochs[-1]
        # The last transfer overlapped only the last computation.
        total += max(0.0, last.t_io - last.t_comp)
    return total
