"""Linear least squares and goodness-of-fit (paper Eq. 4 & 5).

The paper fits the aggregate I/O rate against (data size, #MPI ranks)
with plain linear algebra — "instead of using nonlinear regression
methods, we apply linear regression and linear-log regression to
estimate model parameters analytically" (§III-B2):

``y_i = β0·x_{i,0} + β1·x_{i,1}``  with  ``β = (XᵀX)⁻¹XᵀY``  (Eq. 4)

The *linear-log* variant applies ``log`` to the features first, which
captures the saturating weak-scaling shape of synchronous writes
(Fig. 3's dotted lines).  Fit quality is judged with the coefficient of
determination (Eq. 5); the paper reads r² > 70% as a strong linear
correlation, observing >80% for sync and >90% for async.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from numpy.typing import ArrayLike, NDArray

__all__ = ["LinearLeastSquares", "pearson_r2", "r2_score"]

_TRANSFORMS = ("linear", "linear-log")


class LinearLeastSquares:
    """Normal-equation least squares over raw or log-transformed features.

    Parameters
    ----------
    transform:
        ``"linear"`` uses features as-is; ``"linear-log"`` maps every
        feature through ``log`` (features must then be positive).
    intercept:
        Eq. 4 has no intercept; set ``True`` to append a constant
        column (useful for the micro-benchmark time fits, where the
        intercept *is* the per-op setup cost).
    """

    def __init__(self, transform: str = "linear",
                 intercept: bool = False) -> None:
        if transform not in _TRANSFORMS:
            raise ValueError(
                f"transform must be one of {_TRANSFORMS}, got {transform!r}"
            )
        self.transform = transform
        self.intercept = intercept
        self.beta: Optional[NDArray[np.float64]] = None
        self._r2: Optional[float] = None

    # ------------------------------------------------------------------
    def _design(self, X: ArrayLike) -> NDArray[np.float64]:
        X = np.atleast_2d(np.asarray(X, dtype=float))
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        if self.transform == "linear-log":
            if np.any(X <= 0):
                raise ValueError("linear-log transform requires positive features")
            X = np.log(X)
        if self.intercept:
            X = np.hstack([X, np.ones((X.shape[0], 1))])
        return X

    def fit(self, X: ArrayLike, y: ArrayLike) -> "LinearLeastSquares":
        """Solve ``β = (XᵀX)⁻¹XᵀY`` (via lstsq for numerical stability)."""
        y = np.asarray(y, dtype=float).ravel()
        D = self._design(X)
        if D.shape[0] != y.shape[0]:
            raise ValueError(
                f"X has {D.shape[0]} rows but y has {y.shape[0]} entries"
            )
        if D.shape[0] < D.shape[1]:
            raise ValueError(
                f"need at least {D.shape[1]} samples, got {D.shape[0]}"
            )
        self.beta, *_ = np.linalg.lstsq(D, y, rcond=None)
        self._r2 = r2_score(y, D @ self.beta)
        return self

    def predict(self, X: ArrayLike) -> NDArray[np.float64]:
        """Predicted responses for feature rows ``X``."""
        if self.beta is None:
            raise RuntimeError("predict() before fit()")
        return self._design(X) @ self.beta

    @property
    def r2(self) -> float:
        """Coefficient of determination on the training data (Eq. 5)."""
        if self._r2 is None:
            raise RuntimeError("r2 unavailable before fit()")
        return self._r2

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<LinearLeastSquares {self.transform} beta="
            f"{None if self.beta is None else np.round(self.beta, 4)}>"
        )


def r2_score(y_true: ArrayLike, y_pred: ArrayLike) -> float:
    """Standard coefficient of determination ``1 - SS_res/SS_tot``.

    Equals Eq. 5's ``Cov(X,Y)²/(Var(X)Var(Y))`` for a simple linear fit
    with intercept, and generalizes it to the multivariate fits used
    here.  Returns 1.0 for a perfect fit of constant data.
    """
    y_true = np.asarray(y_true, dtype=float).ravel()
    y_pred = np.asarray(y_pred, dtype=float).ravel()
    if y_true.shape != y_pred.shape:
        raise ValueError("shape mismatch between y_true and y_pred")
    ss_res = float(np.sum((y_true - y_pred) ** 2))
    ss_tot = float(np.sum((y_true - y_true.mean()) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


def pearson_r2(x: ArrayLike, y: ArrayLike) -> float:
    """Eq. 5 verbatim: ``Cov(X,Y)² / (Var(X)·Var(Y))`` for 1-D data."""
    x = np.asarray(x, dtype=float).ravel()
    y = np.asarray(y, dtype=float).ravel()
    if x.shape != y.shape:
        raise ValueError("x and y must have the same length")
    if x.size < 2:
        raise ValueError("need at least two samples")
    vx = float(np.var(x))
    vy = float(np.var(y))
    if vx == 0.0 or vy == 0.0:
        return 0.0
    cov = float(np.mean((x - x.mean()) * (y - y.mean())))
    return cov * cov / (vx * vy)
