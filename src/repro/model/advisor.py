"""Sync-vs-async decision making and the Fig. 2 feedback loop.

The paper motivates "a transparent and adaptive asynchronous I/O
interface to automatically enable asynchronous I/O when needed"
(§II-B) and sketches the mechanism in Fig. 2: the high-level I/O
library records each request's measurements into a history, estimators
predict the next epoch's costs, and the predicted Eq. 2a vs Eq. 2b
epoch times select the I/O mode.

:class:`Advisor` is the pure decision logic; :class:`AdaptiveVOL` is
the VOL-integrated loop — a connector that wraps a
:class:`~repro.hdf5.native_vol.NativeVOL` and an
:class:`~repro.hdf5.async_vol.AsyncVOL`, measures every operation and
the computation gaps between them, and routes each write to the mode
the model predicts to be faster.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator, Optional

import numpy as np

from repro.hdf5.dataspace import Hyperslab
from repro.hdf5.vol import VOLConnector
from repro.model.epoch import EpochCosts, async_epoch_time, sync_epoch_time
from repro.model.estimators import (
    ComputeTimeModel,
    IORateModel,
    TransactOverheadModel,
)
from repro.trace import IOLog

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hdf5.eventset import EventSet
    from repro.hdf5.objects import StoredDataset, StoredFile
    from repro.mpi.comm import RankContext

__all__ = ["AdaptiveVOL", "Advisor", "Decision", "Mode"]


class Mode(enum.Enum):
    """The two I/O modes under comparison."""

    SYNC = "sync"
    ASYNC = "async"


@dataclass(frozen=True)
class Decision:
    """One advisory outcome with its supporting predictions."""

    mode: Mode
    est_sync_epoch: float
    est_async_epoch: float
    costs: EpochCosts

    @property
    def predicted_speedup(self) -> float:
        """Predicted sync/async ratio (>1 favours async)."""
        return self.est_sync_epoch / self.est_async_epoch


class Advisor:
    """Chooses the I/O mode for the next epoch from model estimates.

    ``margin`` adds hysteresis: async must be predicted at least
    ``margin`` fraction faster before switching away from sync, which
    damps flapping on noisy histories.  ``min_r2`` gates on fit quality
    per the paper's §III-B2 criterion (r² > 0.7 = strong correlation):
    a rate model that cannot explain its history is not trusted to
    switch modes.
    """

    def __init__(
        self,
        compute_model: ComputeTimeModel,
        io_rate_model: IORateModel,
        transact_model: TransactOverheadModel,
        margin: float = 0.0,
        fallback: Mode = Mode.SYNC,
        min_r2: float = 0.0,
    ) -> None:
        if margin < 0:
            raise ValueError(f"margin must be non-negative, got {margin}")
        if not 0.0 <= min_r2 <= 1.0:
            raise ValueError(f"min_r2 must be in [0,1], got {min_r2}")
        self.compute_model = compute_model
        self.io_rate_model = io_rate_model
        self.transact_model = transact_model
        self.margin = margin
        self.fallback = fallback
        #: Fit-quality gate: the paper reads "an r² value above 70%" as a
        #: strong linear correlation (§III-B2); below ``min_r2`` the
        #: advisor distrusts its rate model and stays on ``fallback``.
        self.min_r2 = min_r2
        self.decisions: list[Decision] = []

    @property
    def ready(self) -> bool:
        """Whether every underlying estimator has enough data."""
        return self.compute_model.ready and self.io_rate_model.ready

    def decide(self, data_size: float, nranks: int,
               per_rank_bytes: Optional[float] = None) -> Decision:
        """Predict both epoch times for the next I/O phase and pick a mode.

        ``data_size`` is the aggregate request size (all ranks);
        ``per_rank_bytes`` (defaulting to ``data_size/nranks``) sizes
        the transactional copy, which happens per rank in parallel.
        """
        if not self.ready:
            costs = EpochCosts(0.0, 0.0, 0.0)
            decision = Decision(self.fallback, float("nan"), float("nan"), costs)
            self.decisions.append(decision)
            return decision
        self.io_rate_model.refit()
        if self.io_rate_model.r2 < self.min_r2:
            costs = EpochCosts(0.0, 0.0, 0.0)
            decision = Decision(self.fallback, float("nan"), float("nan"),
                                costs)
            self.decisions.append(decision)
            return decision
        t_comp = self.compute_model.estimate()
        t_io = self.io_rate_model.estimate_time(data_size, nranks)
        per_rank = per_rank_bytes if per_rank_bytes is not None else (
            data_size / max(nranks, 1)
        )
        t_transact = self.transact_model.estimate(per_rank)
        costs = EpochCosts(t_comp=t_comp, t_io=t_io, t_transact=t_transact)
        est_sync = sync_epoch_time(costs)
        est_async = async_epoch_time(costs)
        mode = Mode.ASYNC if est_async * (1.0 + self.margin) < est_sync else Mode.SYNC
        decision = Decision(mode, est_sync, est_async, costs)
        self.decisions.append(decision)
        return decision


class AdaptiveVOL(VOLConnector):
    """The Fig. 2 loop as a VOL connector.

    Wraps a sync and an async connector; rank 0's decisions steer the
    whole job (the paper's model works on aggregate quantities).  For
    every write phase the connector:

    1. measures the *computation gap* since the previous I/O call on
       that rank and feeds the compute-time model,
    2. asks the :class:`Advisor` for a mode (falling back to sync until
       the history warms up),
    3. routes the operation to the chosen connector, and
    4. feeds the observed aggregate rate back into the history.
    """

    mode = "sync"  # records carry the delegate's own mode

    def __init__(
        self,
        sync_vol: VOLConnector,
        async_vol: VOLConnector,
        advisor: Advisor,
        nranks: int,
        log: Optional[IOLog] = None,
    ) -> None:
        shared_log = log if log is not None else sync_vol.log
        super().__init__(shared_log)
        sync_vol.log = shared_log
        async_vol.log = shared_log
        self.sync_vol = sync_vol
        self.async_vol = async_vol
        self.advisor = advisor
        self.nranks = nranks
        self._last_unblocked: dict[int, float] = {}
        #: (file path, phase) -> decided mode; one decision per I/O phase
        #: of each file.
        self._phase_mode: dict[tuple, Mode] = {}
        #: Chronological ((file, phase), mode) decisions for inspection.
        self.mode_trace: list[tuple[tuple, Mode]] = []

    # -- lifecycle: open/close both delegates so either mode is usable ----
    def file_create(self, ctx: "RankContext", stored: "StoredFile") -> Generator:
        yield from self.sync_vol.file_create(ctx, stored)
        yield from self.async_vol.file_create(ctx, stored)

    def file_open(self, ctx: "RankContext", stored: "StoredFile") -> Generator:
        yield from self.sync_vol.file_open(ctx, stored)
        yield from self.async_vol.file_open(ctx, stored)

    def file_flush(self, ctx: "RankContext", stored: "StoredFile") -> Generator:
        yield from self.sync_vol.file_flush(ctx, stored)
        yield from self.async_vol.file_flush(ctx, stored)

    def file_close(self, ctx: "RankContext", stored: "StoredFile") -> Generator:
        yield from self.async_vol.file_close(ctx, stored)
        yield from self.sync_vol.file_close(ctx, stored)

    # -- data path -----------------------------------------------------------
    def dataset_write(
        self,
        ctx: "RankContext",
        stored: "StoredDataset",
        selection: Hyperslab,
        data: Optional[np.ndarray],
        phase: Optional[int],
        es: Optional["EventSet"],
        from_gpu: bool = False,
        pinned: bool = True,
    ) -> Generator:
        nbytes = self._nbytes(stored, selection)
        self._observe_compute(ctx)
        mode = self._mode_for_phase(ctx, (stored.file.path, phase), nbytes)
        delegate = self.async_vol if mode is Mode.ASYNC else self.sync_vol
        n_before = len(self.log.records)
        yield from delegate.dataset_write(
            ctx, stored, selection, data, phase, es,
            from_gpu=from_gpu, pinned=pinned,
        )
        self._last_unblocked[ctx.rank] = ctx.engine.now
        self._feed_history(n_before, nbytes)

    def dataset_read(
        self,
        ctx: "RankContext",
        stored: "StoredDataset",
        selection: Hyperslab,
        phase: Optional[int],
        es: Optional["EventSet"],
    ) -> Generator:
        nbytes = self._nbytes(stored, selection)
        self._observe_compute(ctx)
        mode = self._mode_for_phase(ctx, (stored.file.path, phase), nbytes)
        delegate = self.async_vol if mode is Mode.ASYNC else self.sync_vol
        n_before = len(self.log.records)
        result = yield from delegate.dataset_read(ctx, stored, selection, phase, es)
        self._last_unblocked[ctx.rank] = ctx.engine.now
        self._feed_history(n_before, nbytes)
        return result

    # -- internals --------------------------------------------------------
    def _observe_compute(self, ctx: "RankContext") -> None:
        """The gap since this rank's last I/O call is computation time."""
        if ctx.rank != 0:
            return
        last = self._last_unblocked.get(ctx.rank)
        if last is not None:
            gap = ctx.engine.now - last
            if gap > 0.0:
                self.advisor.compute_model.observe(gap)

    def _mode_for_phase(self, ctx: "RankContext", key: tuple,
                        nbytes: float) -> Mode:
        """One decision per (file, phase); rank 0 decides, all follow."""
        if key in self._phase_mode:
            return self._phase_mode[key]
        decision = self.advisor.decide(
            data_size=nbytes * self.nranks, nranks=self.nranks,
            per_rank_bytes=nbytes,
        )
        self._phase_mode[key] = decision.mode
        self.mode_trace.append((key, decision.mode))
        return decision.mode

    def _feed_history(self, n_before: int, nbytes: float) -> None:
        """Push the operation's observed rate into the model history.

        Measurements touched by injected faults (retried drains, sync
        fallbacks) are excluded: their rates reflect the fault, not the
        system, and feeding them would poison both the regression
        history and the r² quality gate that decides whether the rate
        model is trusted at all.
        """
        for record in self.log.records[n_before:]:
            if record.faulted:
                continue
            rate = record.observed_rate
            if not np.isfinite(rate) or rate <= 0:
                continue
            self.advisor.io_rate_model.history.record(
                data_size=record.nbytes * self.nranks,
                nranks=self.nranks,
                io_rate=rate * self.nranks,
                mode=record.mode,
                op=record.op,
            )
