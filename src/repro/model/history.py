"""Measurement history for the empirical model (paper Fig. 2, §III-B2).

"We estimate the I/O rate based on a history of I/O requests by an
application.  For each I/O request, we record the data size, number of
MPI ranks, and aggregate I/O rate."  The history also receives new
measurements as the application runs, "progressively adding new
measurements ... for improving the accuracy of the model".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.model.units import Bytes, Rate

__all__ = ["IORateSample", "MeasurementHistory"]


@dataclass(frozen=True)
class IORateSample:
    """One past I/O request: the regression's (features, response) row."""

    data_size: Bytes  # total bytes moved by the request across ranks
    nranks: int
    io_rate: Rate  # aggregate bytes/second observed
    mode: str = "sync"  # 'sync' | 'async'
    op: str = "write"  # 'write' | 'read'

    def __post_init__(self) -> None:
        if self.data_size <= 0:
            raise ValueError(f"data_size must be positive, got {self.data_size}")
        if self.nranks < 1:
            raise ValueError(f"nranks must be >= 1, got {self.nranks}")
        if self.io_rate <= 0:
            raise ValueError(f"io_rate must be positive, got {self.io_rate}")
        if self.mode not in ("sync", "async"):
            raise ValueError(f"bad mode {self.mode!r}")
        if self.op not in ("write", "read"):
            raise ValueError(f"bad op {self.op!r}")


class MeasurementHistory:
    """Append-only store of :class:`IORateSample` with matrix views."""

    def __init__(self, max_samples: Optional[int] = None) -> None:
        if max_samples is not None and max_samples < 1:
            raise ValueError("max_samples must be >= 1")
        self.max_samples = max_samples
        self._samples: list[IORateSample] = []

    def __len__(self) -> int:
        return len(self._samples)

    def add(self, sample: IORateSample) -> None:
        """Record one past I/O request (oldest evicted past the cap)."""
        self._samples.append(sample)
        if self.max_samples is not None and len(self._samples) > self.max_samples:
            del self._samples[0]

    def record(self, data_size: Bytes, nranks: int, io_rate: Rate,
               mode: str = "sync", op: str = "write") -> None:
        """Convenience constructor + :meth:`add`."""
        self.add(IORateSample(data_size, nranks, io_rate, mode=mode, op=op))

    def select(self, mode: Optional[str] = None, op: Optional[str] = None
               ) -> list[IORateSample]:
        """Samples matching the given mode/op filters."""
        out = self._samples
        if mode is not None:
            out = [s for s in out if s.mode == mode]
        if op is not None:
            out = [s for s in out if s.op == op]
        return list(out)

    def matrices(self, mode: Optional[str] = None, op: Optional[str] = None
                 ) -> tuple[np.ndarray, np.ndarray]:
        """The paper's (X, Y): X = [data_size, nranks] rows, Y = io_rate."""
        samples = self.select(mode=mode, op=op)
        if not samples:
            return np.empty((0, 2)), np.empty((0,))
        X = np.array([[s.data_size, float(s.nranks)] for s in samples])
        Y = np.array([s.io_rate for s in samples])
        return X, Y

    def best_rate(self, data_size: Bytes, nranks: int,
                  mode: Optional[str] = None, op: Optional[str] = None,
                  rel_tol: float = 0.25) -> Optional[Rate]:
        """Best observed rate at (approximately) this configuration.

        The paper models "the ideal case performance (i.e., the maximum
        aggregate I/O bandwidth achieved)" (§V-C); this helper returns
        the max over samples within ``rel_tol`` of the requested size
        and rank count, or ``None`` if nothing matches.
        """
        rates = [
            s.io_rate
            for s in self.select(mode=mode, op=op)
            if abs(s.data_size - data_size) <= rel_tol * data_size
            and abs(s.nranks - nranks) <= rel_tol * nranks
        ]
        return max(rates) if rates else None
