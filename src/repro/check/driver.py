"""Incremental, parallel driver for ``repro check --inter``.

The interprocedural tier costs three fixpoint solves per project
function, so the repo-wide zero-findings CI gate needs the classic
compiler treatment: cache everything on content hashes, re-analyze only
what a change can actually affect, and fan the per-file lint out across
processes.  Three cache levels, all in one JSON file under
``.repro-check-cache/``:

1. **Tree key** — hash of every ``(path, content hash)`` pair plus the
   mode flags.  An unchanged tree returns the stored findings without
   even parsing: the warm no-op rerun.
2. **Summary units** — files grouped by the strongly connected
   components of the *file-level* call graph, processed bottom-up.  A
   unit's key hashes its member file contents and the summary digests
   of out-of-unit callees, so invalidation propagates through the
   reverse call graph exactly as far as summaries actually change: edit
   a helper's body without changing its summary and no caller is
   touched; change what it does to its arguments and every transitive
   caller re-keys.
3. **Per-file findings** — keyed by the file's content hash, the mode
   flags and the summary digests of every callee the file's calls
   resolve to.

Output is byte-identical regardless of worker count or cache state:
files are linted independently (any order), then findings are emitted
in deterministic file order with a per-file sort — the exact order
:func:`repro.check.lint.lint_paths` produces.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.check.callgraph import (
    ProjectIndex,
    build_call_graph,
    build_index,
    strongly_connected_components,
)
from repro.check.concurrency import ConcIndex, build_conc_index
from repro.check.lint import Finding, _iter_python_files, lint_source
from repro.check.summaries import (
    FunctionSummary,
    InterContext,
    compute_summaries,
)

__all__ = ["CheckResult", "check_paths"]

#: Bump to invalidate every cache entry (rule or summary format change).
CACHE_VERSION = 4
CACHE_FILE = "cache.json"


@dataclass
class CheckResult:
    """Findings plus what the incremental run actually did."""

    findings: List[Finding]
    #: Posix paths re-linted this run (``--diff`` reports only these).
    analyzed: List[str]
    #: Whole-tree cache hit: nothing was parsed or analyzed.
    tree_hit: bool
    stats: Dict[str, int] = field(default_factory=dict)

    def diff_findings(self) -> List[Finding]:
        """Findings restricted to files re-analyzed this run."""
        analyzed = set(self.analyzed)
        return [f for f in self.findings if f.path in analyzed]


def _hash_text(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _key_of(payload: object) -> str:
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _load_cache(cache_dir: pathlib.Path) -> Dict[str, object]:
    try:
        with open(cache_dir / CACHE_FILE, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, ValueError):
        return {}
    if not isinstance(data, dict) or data.get("version") != CACHE_VERSION:
        return {}
    return data


def _save_cache(cache_dir: pathlib.Path, data: Dict[str, object]) -> None:
    """Atomic rewrite; only the current run's entries survive."""
    try:
        cache_dir.mkdir(parents=True, exist_ok=True)
        tmp = cache_dir / (CACHE_FILE + ".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(data, fh, sort_keys=True, separators=(",", ":"))
        os.replace(tmp, cache_dir / CACHE_FILE)
    except OSError:
        pass  # a read-only checkout just runs cold every time


def _findings_to_wire(findings: Sequence[Finding]) -> List[Dict[str, object]]:
    return [dataclasses.asdict(f) for f in findings]


def _findings_from_wire(rows: object) -> List[Finding]:
    return [Finding(**row) for row in rows]  # type: ignore[arg-type]


def _summaries_with_cache(
        ctx: InterContext, hashes: Dict[str, str],
        old_units: Dict[str, Dict[str, Dict[str, object]]],
        new_units: Dict[str, Dict[str, Dict[str, object]]]) -> int:
    """Fill ``ctx.summaries`` unit by unit, reusing cached units.

    Returns the number of units recomputed (0 on a fully warm tree).
    """
    func_path = {q: info.path for q, info in ctx.index.functions.items()}
    funcs_by_path: Dict[str, List[str]] = {}
    for qual, path in func_path.items():
        funcs_by_path.setdefault(path, []).append(qual)
    file_edges: Dict[str, Set[str]] = {p: set() for p in ctx.trees}
    for caller, callees in ctx.edges.items():
        caller_path = func_path.get(caller)
        if caller_path is None:
            continue
        for callee in callees:
            callee_path = func_path.get(callee)
            if callee_path is not None and callee_path != caller_path:
                file_edges.setdefault(caller_path, set()).add(callee_path)

    recomputed = 0
    for component in strongly_connected_components(file_edges):
        members = sorted(component)
        member_set = set(members)
        funcs = sorted(
            q for m in members for q in funcs_by_path.get(m, ()))
        if not funcs:
            continue
        external = sorted({
            callee
            for qual in funcs
            for callee in ctx.edges.get(qual, ())
            if func_path.get(callee) not in member_set
            and callee in ctx.summaries
        })
        unit_key = _key_of([
            CACHE_VERSION,
            [(m, hashes.get(m, "")) for m in members],
            [(c, ctx.summaries[c].digest) for c in external],
        ])
        cached = old_units.get(unit_key)
        if cached is not None:
            for qual, data in cached.items():
                ctx.summaries[qual] = FunctionSummary.from_dict(data)
        else:
            compute_summaries(ctx, only=set(funcs))
            recomputed += 1
        new_units[unit_key] = {
            qual: ctx.summaries[qual].to_dict()
            for qual in funcs if qual in ctx.summaries
        }
    return recomputed


def _file_key(path: str, content_hash: str, flow: bool, inter: bool,
              concurrency: bool, ctx: Optional[InterContext]) -> str:
    """Findings cache key: content + flags + resolved-callee digests.

    Under ``--concurrency`` the whole-project ``ConcIndex`` digest
    joins the key: an RC6xx finding in this file can be produced (or
    excused) by code with no call-graph edge to it — a cycle-closing
    acquisition elsewhere, a trigger appearing anywhere — so per-file
    reuse is only sound while the global verdicts are unchanged."""
    callee_digests: List[Tuple[str, str]] = []
    if ctx is not None and path in ctx.trees:
        view = ctx.own_view(path)
        quals = sorted(set(view.resolver.calls.values()))
        callee_digests = [
            (q, ctx.summaries[q].digest)
            for q in quals if q in ctx.summaries
        ]
    conc_digest = ""
    if concurrency and ctx is not None and ctx.conc is not None:
        conc_digest = ctx.conc.digest
    return _key_of([CACHE_VERSION, path, content_hash, flow, inter,
                    concurrency, conc_digest, callee_digests])


# -- worker-side state (fork start method shares it copy-on-write) ----------

_WORKER: Dict[str, object] = {}


def _worker_init(index: ProjectIndex,
                 summaries: Dict[str, FunctionSummary],
                 flow: bool,
                 prim_attrs: Dict[str, str],
                 conc: Optional[ConcIndex],
                 concurrency: bool) -> None:
    shim = InterContext(index, {})
    shim.summaries = summaries
    shim.prim_attrs = prim_attrs
    shim.conc = conc
    _WORKER["inter"] = shim
    _WORKER["flow"] = flow
    _WORKER["concurrency"] = concurrency


def _worker_lint(task: Tuple[str, str]) -> Tuple[str, List[Dict[str, object]]]:
    path, text = task
    findings = lint_source(text, path=path, flow=bool(_WORKER["flow"]),
                           inter=_WORKER["inter"],
                           concurrency=bool(_WORKER["concurrency"]))
    return path, _findings_to_wire(findings)


def check_paths(paths: Iterable[Union[str, pathlib.Path]],
                flow: bool = True,
                inter: bool = True,
                workers: Optional[int] = None,
                cache_dir: Union[str, pathlib.Path] = ".repro-check-cache",
                use_cache: bool = True,
                concurrency: bool = False) -> CheckResult:
    """Incremental interprocedural lint over ``paths``.

    ``workers`` caps the lint fan-out (``None``/``1`` runs serially —
    the output is byte-identical either way).  ``use_cache=False``
    forces a cold run and still writes a fresh cache.
    ``concurrency=True`` implies ``inter`` and additionally runs the
    RC6xx conc tier over the assembled project-wide ``ConcIndex``.
    """
    if concurrency:
        inter = True
    cache_path = pathlib.Path(cache_dir)
    files = _iter_python_files(paths)
    order: List[str] = []
    texts: Dict[str, str] = {}
    for file_path in files:
        posix = pathlib.PurePath(str(file_path)).as_posix()
        if posix in texts:
            continue
        order.append(posix)
        texts[posix] = file_path.read_text(encoding="utf-8")
    hashes = {p: _hash_text(t) for p, t in texts.items()}

    cache = _load_cache(cache_path) if use_cache else {}
    tree_key = _key_of([CACHE_VERSION, flow, inter, concurrency,
                        sorted(hashes.items())])
    tree_entry = cache.get("tree")
    if isinstance(tree_entry, dict) and tree_entry.get("key") == tree_key:
        findings = _findings_from_wire(tree_entry.get("findings", []))
        return CheckResult(findings=findings, analyzed=[], tree_hit=True,
                           stats={"files": len(order), "analyzed": 0,
                                  "units_recomputed": 0})

    ctx: Optional[InterContext] = None
    units_recomputed = 0
    new_units: Dict[str, Dict[str, Dict[str, object]]] = {}
    if inter:
        import ast as ast_mod
        trees = {}
        for posix in order:
            try:
                trees[posix] = ast_mod.parse(texts[posix])
            except SyntaxError:
                continue  # lint_source reports RC000
        index = build_index(trees)
        ctx = InterContext(index, trees)
        ctx.edges = build_call_graph(index, trees)
        old_units = cache.get("units")
        if not isinstance(old_units, dict):
            old_units = {}
        units_recomputed = _summaries_with_cache(
            ctx, hashes, old_units, new_units)
        ctx.conc = build_conc_index(ctx.summaries, ctx.index.functions)
        flow = True

    old_files = cache.get("files")
    if not isinstance(old_files, dict):
        old_files = {}
    new_files: Dict[str, Dict[str, object]] = {}
    per_file: Dict[str, List[Finding]] = {}
    pending: List[str] = []
    for posix in order:
        key = _file_key(posix, hashes[posix], flow, inter, concurrency,
                        ctx)
        entry = old_files.get(posix)
        if isinstance(entry, dict) and entry.get("key") == key:
            per_file[posix] = _findings_from_wire(entry.get("findings", []))
        else:
            pending.append(posix)
        new_files[posix] = {"key": key}

    if pending:
        tasks = [(posix, texts[posix]) for posix in pending]
        n_workers = workers if workers is not None else 1
        if n_workers > 1 and len(tasks) > 1 and ctx is not None:
            import multiprocessing

            mp = multiprocessing.get_context("fork")
            with mp.Pool(
                    processes=min(n_workers, len(tasks)),
                    initializer=_worker_init,
                    initargs=(ctx.index, ctx.summaries, flow,
                              ctx.prim_attrs, ctx.conc,
                              concurrency)) as pool:
                for posix, rows in pool.map(_worker_lint, tasks):
                    per_file[posix] = _findings_from_wire(rows)
        else:
            for posix, text in tasks:
                per_file[posix] = lint_source(text, path=posix, flow=flow,
                                              inter=ctx,
                                              concurrency=concurrency)

    findings: List[Finding] = []
    for posix in order:
        file_findings = per_file.get(posix, [])
        new_files[posix]["findings"] = _findings_to_wire(file_findings)
        findings.extend(file_findings)

    _save_cache(cache_path, {
        "version": CACHE_VERSION,
        "tree": {"key": tree_key, "findings": _findings_to_wire(findings)},
        "units": new_units,
        "files": new_files,
    })
    return CheckResult(
        findings=findings, analyzed=pending, tree_hit=False,
        stats={"files": len(order), "analyzed": len(pending),
               "units_recomputed": units_recomputed})
