"""RC5xx: dimension (unit) consistency for the performance model (flow tier).

The paper's model (Eqs. 1-5) mixes three physical dimensions — bytes,
seconds and rates (bytes/second) — and a silent unit slip corrupts
every downstream regression (Eq. 3 is ``t_io = data_size / f_io_rate``:
bytes / rate = seconds).  These rules infer dimensions from

- ``Annotated`` unit aliases on the :mod:`repro.model` public surface
  (:mod:`repro.model.units`: ``Bytes``, ``Seconds``, ``Rate``), and
- naming conventions used consistently across the repo
  (``*_bytes``/``nbytes`` are bytes, ``t_*``/``*_seconds``/``*_s`` are
  seconds, ``*_bandwidth``/``*_rate``/``*_gbps`` are rates,
  ``n_*``/``nranks`` are dimensionless counts),

propagate them through assignments and arithmetic with the obvious
algebra (bytes/seconds = rate, bytes/rate = seconds, rate*seconds =
bytes, dimensionless is transparent), and flag only *definite*
conflicts — both sides fully known and different — so unannotated code
stays silent.  Probability-style ``*_error_rate`` names are explicitly
exempt from the rate heuristic.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from repro.check.cfg import CFG, CFGNode
from repro.check.dataflow import ForwardAnalysis, solve
from repro.check.domains import UNBOUND, Env
from repro.check.rules import FlowRule, LintContext, register
from repro.check.rules._flowutil import header_exprs, target_names, walk_exprs

__all__ = ["RC501", "RC502", "RC503"]

BYTES, SECONDS, RATE, DIMLESS, UNKNOWN = (
    "bytes", "seconds", "rate", "dimless", "unknown")
#: Dimensions a *definite* conflict can be built from.
CONCRETE = (BYTES, SECONDS, RATE)

Dims = FrozenSet[str]
Violation = Tuple[int, int, str]

_BYTES_SUFFIXES = ("_bytes", "_nbytes")
_BYTES_EXACT = {"nbytes", "data_size"}
_SECONDS_SUFFIXES = ("_seconds", "_secs", "_s", "_time")
_SECONDS_EXACT = {"seconds", "elapsed", "now"}
_RATE_SUFFIXES = ("_bandwidth", "_bw", "_gbps", "_bps", "_rate")
_RATE_EXACT = {"bandwidth", "io_rate", "rate"}
#: Probability/frequency names that merely *look* like I/O rates.
_RATE_EXEMPT_SUFFIXES = ("_error_rate", "_fault_rate", "_drop_rate",
                         "_retry_rate", "_hit_rate", "_miss_rate")
_RATE_EXEMPT_EXACT = {"fault_rate", "arrival_rate", "sample_rate"}
_COUNT_EXACT = {"nranks", "nnodes", "nprocs", "nsteps", "njobs",
                "Mi", "Ki", "Gi", "Ti"}
_COUNT_SUFFIXES = ("_count",)


def claim(name: Optional[str]) -> Optional[str]:
    """Dimension a name advertises via the repo's conventions."""
    if not name:
        return None
    if name in _BYTES_EXACT or name.endswith(_BYTES_SUFFIXES):
        return BYTES
    if name in _RATE_EXEMPT_EXACT or name.endswith(_RATE_EXEMPT_SUFFIXES):
        return None
    if name in _RATE_EXACT or name.endswith(_RATE_SUFFIXES):
        return RATE
    if name in _SECONDS_EXACT or name.endswith(_SECONDS_SUFFIXES):
        return SECONDS
    if (name.startswith("t_") and len(name) > 2
            and name[2:].replace("_", "").isalpha()):
        return SECONDS
    if name in _COUNT_EXACT or name.endswith(_COUNT_SUFFIXES) \
            or (name.startswith("n_") and len(name) > 2):
        return DIMLESS
    return None


def _annotation_dim(annotation: Optional[ast.expr]) -> Optional[str]:
    """Dimension declared by a ``repro.model.units`` alias annotation."""
    if annotation is None:
        return None
    tail: Optional[str] = None
    if isinstance(annotation, ast.Name):
        tail = annotation.id
    elif isinstance(annotation, ast.Attribute):
        tail = annotation.attr
    if tail in ("Bytes",):
        return BYTES
    if tail in ("Seconds",):
        return SECONDS
    if tail in ("Rate",):
        return RATE
    if tail in ("Dimensionless", "Count"):
        return DIMLESS
    if isinstance(annotation, ast.Subscript):
        # Annotated[float, "bytes"] spelled inline.
        base = annotation.value
        if isinstance(base, ast.Name) and base.id == "Annotated" \
                and isinstance(annotation.slice, ast.Tuple):
            for element in annotation.slice.elts[1:]:
                if isinstance(element, ast.Constant) \
                        and element.value in (BYTES, SECONDS, RATE, DIMLESS):
                    return str(element.value)
    return None


def _combine(op: ast.operator, a: str, b: str) -> str:
    """Dimension algebra for one pair of operand dimensions."""
    if UNKNOWN in (a, b) or UNBOUND in (a, b):
        return UNKNOWN
    if isinstance(op, (ast.Add, ast.Sub)):
        if a == b:
            return a
        if a == DIMLESS:
            return b
        if b == DIMLESS:
            return a
        return UNKNOWN  # mismatch; RC501 reports it separately
    if isinstance(op, ast.Mult):
        if a == DIMLESS:
            return b
        if b == DIMLESS:
            return a
        if {a, b} == {RATE, SECONDS}:
            return BYTES
        return UNKNOWN
    if isinstance(op, (ast.Div, ast.FloorDiv)):
        if b == DIMLESS:
            return a
        if a == b:
            return DIMLESS
        if a == BYTES and b == SECONDS:
            return RATE
        if a == BYTES and b == RATE:
            return SECONDS
        return UNKNOWN
    return UNKNOWN


def _definite(dims: Dims) -> Optional[str]:
    """The single concrete dimension of ``dims``, if fully known."""
    core = dims - {UNBOUND}
    if len(core) == 1:
        (dim,) = core
        if dim in CONCRETE:
            return dim
    return None


def _dims(expr: ast.expr, env: Env,
          inter: Optional[object] = None) -> Dims:
    """Possible dimensions of ``expr`` under ``env``.

    With an inter view, a call resolved to a project function whose
    summary carries a definite return dimension contributes that
    dimension; the naming heuristic on the callee stays the fallback
    (precedence: return annotation > summary > name claim — the
    annotation already won inside the summary itself).
    """
    if isinstance(expr, ast.Constant):
        if isinstance(expr.value, (int, float)) \
                and not isinstance(expr.value, bool):
            return frozenset({DIMLESS})
        return frozenset({UNKNOWN})
    if isinstance(expr, ast.Name):
        states = env.get(expr.id)
        if states is not None:
            return states
        claimed = claim(expr.id)
        return frozenset({claimed}) if claimed else frozenset({UNKNOWN})
    if isinstance(expr, ast.Attribute):
        claimed = claim(expr.attr)
        return frozenset({claimed}) if claimed else frozenset({UNKNOWN})
    if isinstance(expr, ast.UnaryOp):
        return _dims(expr.operand, env, inter)
    if isinstance(expr, ast.IfExp):
        return _dims(expr.body, env, inter) | _dims(expr.orelse, env, inter)
    if isinstance(expr, ast.BinOp):
        left = _dims(expr.left, env, inter)
        right = _dims(expr.right, env, inter)
        return frozenset(
            _combine(expr.op, a, b) for a in left for b in right)
    if isinstance(expr, ast.Call):
        func = expr.func
        func_name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None)
        if func_name in ("float", "abs") and len(expr.args) == 1:
            return _dims(expr.args[0], env, inter)
        if func_name in ("max", "min") and expr.args:
            out: Dims = frozenset()
            for arg in expr.args:
                out = out | _dims(arg, env, inter)
            return out
        if inter is not None:
            summarized = inter.return_dim_for_call(expr)  # type: ignore[attr-defined]
            if summarized is not None:
                return frozenset({str(summarized)})
        claimed = claim(func_name)
        return frozenset({claimed}) if claimed else frozenset({UNKNOWN})
    return frozenset({UNKNOWN})


class _UnitsAnalysis(ForwardAnalysis):
    def __init__(self, cfg: CFG, inter: Optional[object] = None) -> None:
        self.cfg = cfg
        self.inter = inter

    def initial(self, cfg: CFG) -> Env:
        env = Env()
        args = cfg.func.args
        every = args.posonlyargs + args.args + args.kwonlyargs
        for arg in every:
            dim = _annotation_dim(arg.annotation) or claim(arg.arg)
            if dim is not None:
                env = env.set(arg.arg, frozenset({dim}))
        return env

    def transfer(self, cfg: CFG, node: CFGNode, env: Env) -> Env:
        return _apply(node, env, report=None, inter=self.inter)


def _apply(node: CFGNode, env: Env,
           report: Optional[List[Violation]],
           inter: Optional[object] = None) -> Env:
    stmt = node.ast_node
    if stmt is None:
        return env
    exprs = header_exprs(node)

    if report is not None:
        for sub in walk_exprs(exprs):
            if isinstance(sub, ast.BinOp) \
                    and isinstance(sub.op, (ast.Add, ast.Sub)):
                left = _definite(_dims(sub.left, env, inter))
                right = _definite(_dims(sub.right, env, inter))
                if left and right and left != right:
                    op = "+" if isinstance(sub.op, ast.Add) else "-"
                    report.append((sub.lineno, sub.col_offset,
                                   f"adding mismatched dimensions: "
                                   f"{left} {op} {right}"))
            elif isinstance(sub, ast.Compare):
                operands = [sub.left] + list(sub.comparators)
                for first, second in zip(operands, operands[1:]):
                    left = _definite(_dims(first, env, inter))
                    right = _definite(_dims(second, env, inter))
                    if left and right and left != right:
                        report.append((sub.lineno, sub.col_offset,
                                       f"comparing mismatched dimensions: "
                                       f"{left} vs {right}"))
            elif isinstance(sub, ast.Call):
                for kw in sub.keywords:
                    if kw.arg is None:
                        continue
                    claimed = claim(kw.arg)
                    if claimed not in CONCRETE:
                        continue
                    actual = _definite(_dims(kw.value, env, inter))
                    if actual and actual != claimed:
                        report.append((kw.value.lineno, kw.value.col_offset,
                                       f"argument {kw.arg!r} declares "
                                       f"{claimed} but receives {actual}"))
        if isinstance(stmt, (ast.Assign, ast.AnnAssign)) \
                and stmt.value is not None:
            targets = stmt.targets if isinstance(stmt, ast.Assign) \
                else [stmt.target]
            for target in targets:
                declared = None
                if isinstance(stmt, ast.AnnAssign):
                    declared = _annotation_dim(stmt.annotation)
                if isinstance(target, ast.Name):
                    declared = declared or claim(target.id)
                elif isinstance(target, ast.Attribute):
                    declared = declared or claim(target.attr)
                if declared not in CONCRETE:
                    continue
                actual = _definite(_dims(stmt.value, env, inter))
                if actual and actual != declared:
                    report.append((stmt.lineno, stmt.col_offset,
                                   f"storing {actual} into "
                                   f"{_target_label(target)} declared as "
                                   f"{declared}"))

    # -- transition -------------------------------------------------------
    out = env
    if isinstance(stmt, (ast.Assign, ast.AnnAssign)) \
            and stmt.value is not None:
        targets = stmt.targets if isinstance(stmt, ast.Assign) \
            else [stmt.target]
        value_dims = _dims(stmt.value, env, inter)
        for target in targets:
            if isinstance(target, ast.Name):
                declared = None
                if isinstance(stmt, ast.AnnAssign):
                    declared = _annotation_dim(stmt.annotation)
                declared = declared or claim(target.id)
                if declared is not None:
                    # Trust the declaration (prevents conflict cascades).
                    out = out.set(target.id, frozenset({declared}))
                else:
                    out = out.set(target.id, value_dims)
            else:
                for name in target_names(target):
                    out = out.remove(name)
    elif isinstance(stmt, ast.AugAssign):
        for name in target_names(stmt.target):
            out = out.remove(name)
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        for name in target_names(stmt.target):
            out = out.remove(name)
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if item.optional_vars is not None:
                for name in target_names(item.optional_vars):
                    out = out.remove(name)
    elif isinstance(stmt, ast.Delete):
        for target in stmt.targets:
            for name in target_names(target):
                out = out.remove(name)
    elif isinstance(stmt, ast.excepthandler) and stmt.name:
        out = out.remove(stmt.name)
    return out


def _target_label(target: ast.expr) -> str:
    if isinstance(target, ast.Name):
        return repr(target.id)
    if isinstance(target, ast.Attribute):
        return repr(target.attr)
    return "target"


def _analyze(cfg: CFG, inter: Optional[object] = None) -> List[Violation]:
    cached = getattr(cfg, "_units", None)
    if cached is not None:
        return cached
    in_states = solve(cfg, _UnitsAnalysis(cfg, inter))
    findings: List[Violation] = []
    for node in cfg.stmt_nodes():
        if node.index in in_states:
            _apply(node, in_states[node.index], report=findings,
                   inter=inter)
    cfg._units = findings  # type: ignore[attr-defined]
    return findings


@register
class RC501(FlowRule):
    id = "RC501"
    title = "addition/subtraction of mismatched dimensions"
    hint = ("bytes, seconds and rates cannot be added; convert first "
            "(Eq. 3: seconds = bytes / rate)")
    scope = "repo"

    def check_function(self, ctx: LintContext,
                       cfg: CFG) -> Iterator[Violation]:
        for line, col, message in _analyze(cfg, ctx.inter):
            if "adding mismatched" in message:
                yield line, col, message


@register
class RC502(FlowRule):
    id = "RC502"
    title = "value stored into a name declared with another dimension"
    hint = ("the name (or its Annotated alias) promises a different "
            "dimension than the expression produces; fix the arithmetic "
            "or rename the variable")
    scope = "repo"

    def check_function(self, ctx: LintContext,
                       cfg: CFG) -> Iterator[Violation]:
        for line, col, message in _analyze(cfg, ctx.inter):
            if "storing" in message or "declares" in message:
                yield line, col, message


@register
class RC503(FlowRule):
    id = "RC503"
    title = "comparison of mismatched dimensions"
    hint = ("comparing bytes with seconds (or rates) is always a bug; "
            "normalize both sides to one dimension first")
    scope = "repo"

    def check_function(self, ctx: LintContext,
                       cfg: CFG) -> Iterator[Violation]:
        for line, col, message in _analyze(cfg, ctx.inter):
            if "comparing mismatched" in message:
                yield line, col, message
