"""Robustness rules (RC2xx band): disciplined fault recovery.

The fault taxonomy (:mod:`repro.faults.errors`) makes every injected
failure catchable by type — which also makes it easy to write a retry
loop that spins forever on a persistent fault, or that hammers a
recovering resource with zero delay between attempts.  Both bugs are
invisible in fault-free runs and ruinous in chaos sweeps: an unbounded
retry turns one dead OST into a hung fleet, and a delay-free retry
turns a 1-second brownout into a retry storm.  RC205 statically
requires every retry loop around a fault-taxonomy catch to carry an
attempt bound *and* a backoff delay.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.check.rules import LintContext, Rule, register
from repro.check.rules.determinism import dotted_name

__all__ = ["RetryDisciplineRule"]

#: Exception names from the fault taxonomy whose catch inside a loop
#: marks that loop as a *retry loop* (recovery from injected faults).
_TAXONOMY = {
    "FaultError",
    "TransientIOError",
    "PFSUnavailableError",
    "FlakyWriteError",
    "FlakyReadError",
    "SSDFaultError",
    "WorkerCrashError",
    "StagingTimeoutError",
    "NodeFailureError",
    "RetryExhaustedError",
}

#: Identifier fragments that signal a bounded attempt count.
_BOUND_HINTS = ("attempt", "retr", "tries", "budget")

#: Call-name / identifier fragments that signal an inter-attempt delay.
_DELAY_CALL_HINTS = ("timeout", "sleep", "backoff", "delay", "pause")
_DELAY_NAME_HINTS = ("backoff", "jitter", "delay")

_STOP = (ast.While, ast.For, ast.AsyncFor,
         ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


def _shallow_walk(node: ast.AST) -> Iterator[ast.AST]:
    """Walk ``node``'s subtree without descending into nested loops or
    function definitions — a retry loop's bound and delay must live in
    *that* loop, not in some inner one."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if isinstance(child, _STOP):
            continue
        stack.extend(ast.iter_child_nodes(child))


def _handler_names(handler: ast.ExceptHandler) -> list[str]:
    """Last path components of the handler's exception type(s)."""
    if handler.type is None:
        return []
    types = (handler.type.elts if isinstance(handler.type, ast.Tuple)
             else [handler.type])
    names = []
    for node in types:
        dotted = dotted_name(node)
        if dotted is not None:
            names.append(dotted.rsplit(".", 1)[-1])
    return names


def _handler_retries(handler: ast.ExceptHandler) -> bool:
    """Whether the handler lets the loop spin again.

    A handler whose last statement unconditionally leaves the loop
    (``raise``, ``break``, ``return``) is propagation or bail-out, not
    a retry — the loop body will not run the operation again.
    """
    last = handler.body[-1]
    return not isinstance(last, (ast.Raise, ast.Break, ast.Return))


def _ident_fragments(node: ast.AST) -> Iterator[str]:
    for child in _shallow_walk(node):
        if isinstance(child, ast.Name):
            yield child.id.lower()
        elif isinstance(child, ast.Attribute):
            yield child.attr.lower()


def _has_attempt_bound(loop: ast.AST) -> bool:
    """A ``for`` over ``range(...)``/``enumerate(range(...))``, or any
    comparison against an attempt/retry/budget-named value in the loop
    (its own test included)."""
    if isinstance(loop, (ast.For, ast.AsyncFor)):
        call = loop.iter
        if isinstance(call, ast.Call):
            name = dotted_name(call.func)
            if name is not None and name.rsplit(".", 1)[-1] in (
                    "range", "enumerate"):
                return True
    for child in _shallow_walk(loop):
        if not isinstance(child, ast.Compare):
            continue
        for operand in (child.left, *child.comparators):
            for frag in _ident_fragments_one(operand):
                if any(h in frag for h in _BOUND_HINTS):
                    return True
    return False


def _ident_fragments_one(node: ast.AST) -> Iterator[str]:
    """Identifier fragments of one expression (full walk: operands are
    small and contain no nested loops worth skipping)."""
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            yield child.id.lower()
        elif isinstance(child, ast.Attribute):
            yield child.attr.lower()


def _has_backoff(loop: ast.AST) -> bool:
    """A delay-ish call (``engine.timeout``, ``sleep``, ``*_backoff*``)
    or a backoff/jitter/delay-named value anywhere in the loop."""
    for child in _shallow_walk(loop):
        if isinstance(child, ast.Call):
            name = dotted_name(child.func)
            if name is not None:
                last = name.rsplit(".", 1)[-1]
                if any(h in last for h in _DELAY_CALL_HINTS):
                    return True
    return any(
        any(h in frag for h in _DELAY_NAME_HINTS)
        for frag in _ident_fragments(loop)
    )


@register
class RetryDisciplineRule(Rule):
    """RC205 — retry loop without attempt bound or backoff."""

    id = "RC205"
    title = "undisciplined retry loop around a fault-taxonomy catch"
    hint = (
        "bound the attempts (compare an attempt/retry counter, or "
        "iterate a range) and delay between them (engine.timeout with "
        "a growing, jittered backoff)"
    )
    scope = "sim"

    def check(self, ctx: LintContext) -> Iterator[tuple[int, int, str]]:
        for loop in ast.walk(ctx.tree):
            if not isinstance(loop, (ast.While, ast.For, ast.AsyncFor)):
                continue
            caught = self._retrying_taxonomy_catches(loop)
            if not caught:
                continue
            names = ", ".join(sorted(set(caught)))
            if not _has_attempt_bound(loop):
                yield (loop.lineno, loop.col_offset,
                       f"retry loop around {names} has no bounded "
                       f"attempt count; a persistent fault spins it "
                       f"forever")
            if not _has_backoff(loop):
                yield (loop.lineno, loop.col_offset,
                       f"retry loop around {names} has no backoff "
                       f"delay between attempts; it hammers the "
                       f"faulted resource")

    @staticmethod
    def _retrying_taxonomy_catches(loop: ast.AST) -> list[str]:
        """Taxonomy exception names caught-and-retried in this loop
        (innermost loop only)."""
        caught: list[str] = []
        for child in _shallow_walk(loop):
            if not isinstance(child, ast.Try):
                continue
            for handler in child.handlers:
                hits = [n for n in _handler_names(handler)
                        if n in _TAXONOMY]
                if hits and _handler_retries(handler):
                    caught.extend(hits)
        return caught
