"""Pluggable rule registry for the ``repro check`` static analyzer.

A rule is a small object with an ``id`` (``RCxyz``, stable forever), a
one-line ``title``, a ``hint`` telling the author how to fix the
violation, a ``scope`` and a ``check`` method yielding violations as
``(line, col, message)`` triples.

Scopes
------

``"repo"``
    The rule applies to every linted file (``src/`` and ``tests/``).
``"sim"``
    The rule applies only to the simulation-path packages whose
    determinism the figure gates depend on: ``repro/sim``,
    ``repro/sched``, ``repro/hdf5``, ``repro/faults``,
    ``repro/platform``.

Tiers
-----

``"flat"``
    Single-statement AST pattern rules (RC1xx-RC3xx); always run.
``"flow"``
    Flow-sensitive rules (RC4xx-RC5xx) built on the CFG + fixpoint
    machinery in :mod:`repro.check.cfg` / :mod:`repro.check.dataflow`;
    run only when the ``flow`` flag (CLI ``repro check --flow``) is on.
``"inter"``
    Interprocedural rules (RC405, RC110/RC111) that consult the
    call-graph + function-summary machinery in
    :mod:`repro.check.callgraph` / :mod:`repro.check.summaries`; run
    only when the lint context carries an inter view (CLI
    ``repro check --inter``).  The flow rules also *sharpen* under this
    tier: handles passed to resolved project functions apply the
    callee's effect summary instead of the escape hedge.
``"conc"``
    Whole-project concurrency rules (RC6xx) over the acquisition-order
    graph and wait/trigger matching in :mod:`repro.check.concurrency`;
    run only when the inter view also carries an assembled
    ``ConcIndex`` (CLI ``repro check --concurrency``).

Adding a rule
-------------

1. Subclass :class:`Rule` (flat tier) or :class:`FlowRule` (flow tier)
   in one of the modules here (or a new one), set
   ``id``/``title``/``hint``/``scope`` and implement ``check`` — for
   flow rules, ``check_function``, which receives one CFG at a time.
2. Decorate it with :func:`register`.  IDs must be unique; pick the
   next free number in the band (1xx determinism, 2xx error
   discipline, 3xx hygiene, 4xx async-API typestate, 5xx units).
3. Add a good/bad fixture pair for it in ``tests/test_check.py`` (flat)
   or ``tests/test_check_flow.py`` (flow) and a row to the rule table
   in ``docs/architecture.md``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Type

from repro.check.cfg import CFG, build_cfg, iter_functions

__all__ = ["FlowRule", "LintContext", "RULES", "Rule", "all_rules",
           "register"]

#: Packages (posix path fragments) whose determinism the repo's
#: byte-identical gates rest on; ``scope="sim"`` rules apply here only.
SIM_PATHS = (
    "repro/sim/",
    "repro/sched/",
    "repro/hdf5/",
    "repro/faults/",
    "repro/platform/",
)


@dataclass
class LintContext:
    """Everything a rule may look at for one file."""

    path: str  # normalized to posix separators
    tree: ast.Module
    source: str
    lines: list[str] = field(default_factory=list)
    #: Per-file interprocedural view (``FileInter`` from
    #: :mod:`repro.check.summaries`) when the inter tier is on; ``None``
    #: keeps the flow rules on their intraprocedural escape hedge.
    inter: Optional[object] = None
    #: Memoized CFGs, keyed by id() of the function node — flow rules
    #: analyzing the same file share one graph per function.
    _cfgs: Dict[int, CFG] = field(default_factory=dict, repr=False)

    @property
    def in_sim_path(self) -> bool:
        """Whether the file lives in a determinism-critical package."""
        return any(fragment in self.path for fragment in SIM_PATHS)

    def cfg(self, func: "ast.FunctionDef | ast.AsyncFunctionDef") -> CFG:
        """The (memoized) control-flow graph of ``func``."""
        key = id(func)
        if key not in self._cfgs:
            self._cfgs[key] = build_cfg(func)
        return self._cfgs[key]


class Rule:
    """Base class for lint rules; subclasses override the metadata and
    :meth:`check`."""

    id: str = ""
    title: str = ""
    hint: str = ""
    scope: str = "repo"  # "repo" | "sim"
    tier: str = "flat"  # "flat" | "flow"

    def applies(self, ctx: LintContext) -> bool:
        """Whether this rule runs on ``ctx`` at all (scope gate)."""
        return self.scope == "repo" or ctx.in_sim_path

    def check(self, ctx: LintContext) -> Iterator[tuple[int, int, str]]:
        """Yield ``(line, col, message)`` per violation."""
        raise NotImplementedError
        yield  # pragma: no cover


class FlowRule(Rule):
    """Base class for flow-sensitive rules (RC4xx/RC5xx).

    Subclasses implement :meth:`check_function` over one CFG; the base
    ``check`` fans out across every function in the file (nested ones
    included) and deduplicates findings — ``finally`` clones can make
    two CFG nodes share one source statement.
    """

    tier = "flow"

    def check(self, ctx: LintContext) -> Iterator[tuple[int, int, str]]:
        seen: set[tuple[int, int, str]] = set()
        for func in iter_functions(ctx.tree):
            for finding in self.check_function(ctx, ctx.cfg(func)):
                if finding not in seen:
                    seen.add(finding)
                    yield finding

    def check_function(self, ctx: LintContext,
                       cfg: CFG) -> Iterator[tuple[int, int, str]]:
        """Yield ``(line, col, message)`` per violation in one function."""
        raise NotImplementedError
        yield  # pragma: no cover


#: Registered rules, keyed by ID (insertion-ordered for stable output).
RULES: dict[str, Rule] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding one instance of ``rule_cls`` to the registry."""
    rule = rule_cls()
    if not rule.id or not rule.title or not rule.hint:
        raise ValueError(f"rule {rule_cls.__name__} lacks id/title/hint")
    if rule.scope not in ("repo", "sim"):
        raise ValueError(f"rule {rule.id}: unknown scope {rule.scope!r}")
    if rule.tier not in ("flat", "flow", "inter", "conc"):
        raise ValueError(f"rule {rule.id}: unknown tier {rule.tier!r}")
    if rule.id in RULES:
        raise ValueError(f"duplicate rule id {rule.id}")
    RULES[rule.id] = rule
    return rule_cls


def all_rules() -> list[Rule]:
    """Registered rules in ID order."""
    return [RULES[rule_id] for rule_id in sorted(RULES)]


# Importing the rule modules populates the registry.  ``interproc``
# must come last: it is the only module allowed to (lazily) reach back
# into the summary machinery.
from repro.check.rules import (  # noqa: E402,F401
    asyncstate,
    determinism,
    errors,
    hygiene,
    robustness,
    units,
    interproc,
    concurrency,
)
