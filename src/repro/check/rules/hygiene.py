"""Hygiene rules (RC3xx): shared-state and float-time hazards.

These patterns do not fail loudly — they skew results silently.  A
mutable default argument aliases state across calls (and across
simulated tenants); ``==`` on *computed* simulated time flips with
floating-point association order; iterating a set of strings feeds
``PYTHONHASHSEED``-dependent order into whatever consumes it.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.check.rules import LintContext, Rule, register
from repro.check.rules.determinism import dotted_name

__all__ = ["FloatTimeEqualityRule", "MutableDefaultRule", "SetIterationRule"]

_MUTABLE_CALLS = ("list", "dict", "set", "deque", "defaultdict",
                  "collections.deque", "collections.defaultdict")


@register
class MutableDefaultRule(Rule):
    """RC301 — mutable default argument."""

    id = "RC301"
    title = "mutable default argument"
    hint = "default to None and create the list/dict/set inside the body"
    scope = "repo"

    def check(self, ctx: LintContext) -> Iterator[tuple[int, int, str]]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.Lambda)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
                    isinstance(default, ast.Call)
                    and dotted_name(default.func) in _MUTABLE_CALLS
                ):
                    yield (default.lineno, default.col_offset,
                           "mutable default is shared across every call "
                           "(and every simulated tenant)")


#: Names that denote simulated time wherever they appear.
_TIME_NAMES = {
    "now", "_now", "deadline", "until", "makespan", "walltime",
    "elapsed", "t_io", "t_comp",
}
_TIME_PREFIXES = ("t_",)
_TIME_SUFFIXES = ("_time", "_deadline", "_at")


def _terminal_name(node: ast.AST) -> str:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _is_time_name(name: str) -> bool:
    return bool(name) and (
        name in _TIME_NAMES
        or name.startswith(_TIME_PREFIXES)
        or name.endswith(_TIME_SUFFIXES)
    )


def _mentions_time(node: ast.AST) -> bool:
    return any(
        _is_time_name(_terminal_name(sub)) for sub in ast.walk(node)
    )


#: Comparator calls that already apply a tolerance — the sanctioned fix.
_TOLERANT_CALLS = {
    "pytest.approx", "approx", "math.isclose", "isclose",
    "np.isclose", "numpy.isclose",
}


def _is_tolerant(node: ast.AST) -> bool:
    return (isinstance(node, ast.Call)
            and dotted_name(node.func) in _TOLERANT_CALLS)


@register
class FloatTimeEqualityRule(Rule):
    """RC302 — ``==`` / ``!=`` on computed simulated time.

    Exact equality of two *stored* timestamps is deterministic (the
    engine's ready-queue fast path relies on it); equality against an
    *arithmetic* expression is not — ``t0 + dt == t1`` flips with
    floating-point association order.  The rule therefore fires only
    when a time-like comparison has an arithmetic side.
    """

    id = "RC302"
    title = "float equality on computed simulated time"
    hint = (
        "compare stored timestamps directly, or use an explicit "
        "tolerance (math.isclose / abs(a - b) < eps)"
    )
    scope = "repo"

    def check(self, ctx: LintContext) -> Iterator[tuple[int, int, str]]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            sides = [node.left, *node.comparators]
            if any(_is_tolerant(side) for side in sides):
                continue
            if not any(_mentions_time(side) for side in sides):
                continue
            if any(isinstance(side, ast.BinOp) for side in sides):
                yield (node.lineno, node.col_offset,
                       "== on an arithmetic simulated-time expression "
                       "depends on float association order")


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (isinstance(node, ast.Call)
            and dotted_name(node.func) in ("set", "frozenset"))


@register
class SetIterationRule(Rule):
    """RC303 — iterating a set where order reaches the output."""

    id = "RC303"
    title = "iteration over an unordered set"
    hint = "wrap the set in sorted(...) to pin the order"
    scope = "repo"

    def check(self, ctx: LintContext) -> Iterator[tuple[int, int, str]]:
        message = ("set iteration order varies with PYTHONHASHSEED for "
                   "str elements")
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.For) and _is_set_expr(node.iter):
                yield (node.iter.lineno, node.iter.col_offset, message)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                for comp in node.generators:
                    if _is_set_expr(comp.iter):
                        yield (comp.iter.lineno, comp.iter.col_offset,
                               message)
            elif (isinstance(node, ast.Call)
                  and isinstance(node.func, ast.Attribute)
                  and node.func.attr == "join"
                  and node.args and _is_set_expr(node.args[0])):
                yield (node.args[0].lineno, node.args[0].col_offset,
                       message)
