"""RC4xx: async-I/O API typestate (flow tier).

The paper's async VOL exposes a strict usage protocol (§III-B): every
operation inserted into an H5ES event set must be waited before its
result is observed or the carrying file is closed, files close exactly
once, and an :class:`~repro.hdf5.async_vol.AsyncVOL` must be finalized
on every path so its background worker drains (the static twin of the
runtime RT204 finding).  These rules prove the protocol *statically*
over each function body by running a typestate analysis on its CFG.

Tracked objects and their alphabets (see :mod:`repro.check.domains`;
values are per-variable powersets, so the lattice height is bounded):

========  =====================================================
kind      states
========  =====================================================
EventSet  ``es.new`` -> ``es.pending`` (insertion via ``es=``
          keyword or ``.add``) -> ``es.waited`` (``.wait()``)
file      ``file.open`` (``lib.create``/``lib.open``) ->
          ``file.closed`` (``.close()``)
AsyncVOL  ``vol.live`` (constructor) -> ``vol.final``
          (``.finalize()``)
result    ``res.unready:<es>`` (``.read(..., es=<es>)``) ->
          ``res.ready`` (after ``<es>.wait()``)
========  =====================================================

Escape hedge: a tracked variable that is aliased, returned, stored
into a container/attribute, passed as a plain argument or captured by
a nested function moves to ``escaped`` and is never reported — some
other owner may complete the protocol.  This trades recall for a
zero-false-positive repo-wide gate.

Interprocedural tier (``--inter``): when a :class:`LintContext` carries
a ``FileInter`` view (:mod:`repro.check.summaries`), a handle passed to
a *resolved* project function no longer escapes — the callee's effect
summary is applied instead (``arg.waited`` on all paths means the
handle comes back waited; ``arg.escaped`` falls back to the hedge), and
a helper's summarized return states seed the caller's binding, so
``es = make_reads(...)`` is tracked just like a local ``EventSet()``.
The same transfer doubles as the summary abstraction: parameters seeded
with the ``arg`` token family record what a function does to its
arguments (``arg`` untouched, ``arg.waited``/``arg.pending``/
``arg.closed``/``arg.final`` protocol transitions, ``arg.escaped``
unknown).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from repro.check.cfg import CFG, CFGNode
from repro.check.dataflow import ForwardAnalysis, solve
from repro.check.domains import UNBOUND, Env
from repro.check.rules import FlowRule, LintContext, register
from repro.check.rules._flowutil import (
    captured_names,
    dotted,
    header_exprs,
    target_names,
    walk_exprs,
)

__all__ = ["RC401", "RC402", "RC403", "RC404"]

ESCAPED = "escaped"
ES_NEW, ES_PENDING, ES_WAITED = "es.new", "es.pending", "es.waited"
FILE_OPEN, FILE_CLOSED = "file.open", "file.closed"
VOL_LIVE, VOL_FINAL = "vol.live", "vol.final"
RES_READY = "res.ready"
RES_UNREADY = "res.unready:"  # + name of the carrying event set

#: Effect-summary token family: the states of a *parameter* whose kind
#: the callee does not know.  ``arg`` means untouched; the others mirror
#: the protocol transitions; ``arg.escaped`` means the callee did
#: something unanalyzable with it (the caller falls back to the hedge).
ARG = "arg"
ARG_WAITED = "arg.waited"
ARG_PENDING = "arg.pending"
ARG_CLOSED = "arg.closed"
ARG_FINAL = "arg.final"
ARG_ESCAPED = "arg.escaped"

Violation = Tuple[int, int, str]


def _is_arg(states: Optional[frozenset]) -> bool:
    """Whether ``states`` belong to the summary ``arg`` token family."""
    return bool(states) and any(
        s == ARG or s.startswith("arg.") for s in states)


def _apply_effects(states: frozenset, effects: frozenset) -> frozenset:
    """Caller-side application of a callee's parameter effect set.

    ``states`` is the handle's current typestate (real kind during
    linting, ``arg`` kind during nested summary computation); every
    effect token contributes the matching post-state, so a may-effect
    (``{arg, arg.waited}``) yields the union of both outcomes.
    """
    if not effects:
        return states
    arg_kind = _is_arg(states)
    out: set = set()
    for token in effects:
        if token == ARG:
            out |= set(states)
        elif token == ARG_WAITED:
            out.add(ARG_WAITED if arg_kind else ES_WAITED)
        elif token == ARG_PENDING:
            out.add(ARG_PENDING if arg_kind else ES_PENDING)
        elif token == ARG_CLOSED:
            out.add(ARG_CLOSED if arg_kind else FILE_CLOSED)
        elif token == ARG_FINAL:
            out.add(ARG_FINAL if arg_kind else VOL_FINAL)
        elif token == ARG_ESCAPED:
            out.add(ARG_ESCAPED if arg_kind else ESCAPED)
    return frozenset(out) if out else states


def _summary_return_states(value: ast.expr,
                           inter: Optional[object]) -> Optional[frozenset]:
    """Typestates a resolved helper call's return value carries."""
    if inter is None:
        return None
    inner = value.value if isinstance(value, (ast.YieldFrom, ast.Await)) \
        else value
    if not isinstance(inner, ast.Call):
        return None
    driven = isinstance(value, (ast.YieldFrom, ast.Await))
    states = inter.return_states_for_call(  # type: ignore[attr-defined]
        inner, driven=driven)
    return states


def _creation_states(value: ast.expr) -> Optional[frozenset]:
    """Typestate seeded by an assignment RHS, if it creates a tracked
    object (``EventSet(...)``, ``AsyncVOL(...)``, ``lib.create/open``)."""
    inner = value.value if isinstance(value, (ast.YieldFrom, ast.Await)) \
        else value
    if not isinstance(inner, ast.Call):
        return None
    name = dotted(inner.func)
    if name is not None:
        tail = name.rsplit(".", 1)[-1]
        if tail == "EventSet":
            return frozenset({ES_NEW})
        if tail == "AsyncVOL":
            return frozenset({VOL_LIVE})
    if (isinstance(inner.func, ast.Attribute)
            and inner.func.attr in ("create", "open")
            and len(inner.args) >= 3):
        # The library protocol: lib.create(ctx, path, vol) /
        # lib.open(ctx, path, vol).
        return frozenset({FILE_OPEN})
    return None


def _read_binding(value: ast.expr, env: Env) -> Optional[str]:
    """Name of the event set carrying an async ``.read`` result."""
    inner = value.value if isinstance(value, (ast.YieldFrom, ast.Await)) \
        else value
    if not (isinstance(inner, ast.Call)
            and isinstance(inner.func, ast.Attribute)
            and inner.func.attr == "read"):
        return None
    for kw in inner.keywords:
        if kw.arg == "es" and isinstance(kw.value, ast.Name):
            states = env.get(kw.value.id)
            if states and any(s.startswith("es.") for s in states):
                return kw.value.id
    return None


def _is_kind(states: Optional[frozenset], prefix: str) -> bool:
    return bool(states) and any(s.startswith(prefix) for s in states)


class _TypestateAnalysis(ForwardAnalysis):
    """Transfer function shared by the solve and report passes."""

    def __init__(self, inter: Optional[object] = None) -> None:
        self.inter = inter

    def transfer(self, cfg: CFG, node: CFGNode, env: Env) -> Env:
        return _apply(node, env, report=None, inter=self.inter)

    def initial(self, cfg: CFG) -> Env:
        return Env()


def _apply(node: CFGNode, env: Env,
           report: Optional[List[Violation]],
           inter: Optional[object] = None) -> Env:
    """OUT state of ``node``; optionally record RC401/RC402/RC403."""
    stmt = node.ast_node
    if stmt is None:
        return env
    exprs = header_exprs(node)
    line, col = node.line, node.col

    # -- report phase (reads the IN state only) ---------------------------
    if report is not None:
        store_targets = set()
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = stmt.targets if isinstance(stmt, ast.Assign) \
                else [stmt.target]
            for target in targets:
                store_targets.update(target_names(target))
        for sub in walk_exprs(exprs):
            if (isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load)
                    and sub.id not in store_targets):
                states = env.get(sub.id)
                if states and any(s.startswith(RES_UNREADY)
                                  for s in states):
                    carrier = next(s for s in states
                                   if s.startswith(RES_UNREADY))
                    report.append((sub.lineno, sub.col_offset,
                                   f"result {sub.id!r} read from an event "
                                   f"set is used before "
                                   f"{carrier[len(RES_UNREADY):]}.wait()"))
            if (isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and isinstance(sub.func.value, ast.Name)):
                receiver = sub.func.value.id
                states = env.get(receiver)
                if states is None:
                    continue
                if sub.func.attr == "close" and _is_kind(states, "file."):
                    if states == frozenset({FILE_CLOSED}):
                        report.append((sub.lineno, sub.col_offset,
                                       f"file {receiver!r} is closed "
                                       f"twice"))
                    # Closing the file ends the epoch: no tracked event
                    # set may still carry un-waited operations.
                    for name, es_states in env.items():
                        if (ES_PENDING in es_states
                                and ESCAPED not in es_states):
                            report.append((
                                sub.lineno, sub.col_offset,
                                f"event set {name!r} has operations "
                                f"inserted but not waited when "
                                f"{receiver!r} is closed"))
                elif (sub.func.attr != "close"
                        and states == frozenset({FILE_CLOSED})):
                    report.append((sub.lineno, sub.col_offset,
                                   f"file {receiver!r} is used after "
                                   f"close ({sub.func.attr})"))

    # -- transition phase -------------------------------------------------
    out = env

    # Closure capture escapes everything the nested body reads.
    for name in captured_names(node):
        if name in out:
            out = out.set(name, frozenset(
                {ARG_ESCAPED if _is_arg(out.get(name)) else ESCAPED}))

    # Calls sitting directly under ``yield from``/``await`` are *driven*:
    # a generator/coroutine callee's body actually runs.
    driven_ids = {
        id(sub.value) for sub in walk_exprs(exprs)
        if isinstance(sub, (ast.YieldFrom, ast.Await))
        and isinstance(sub.value, ast.Call)
    }

    for sub in walk_exprs(exprs):
        if not isinstance(sub, ast.Call):
            continue
        # Method calls drive the state machines; a tracked receiver is
        # owned by the machine, so summaries never touch it below.
        protocol_receiver: Optional[str] = None
        if (isinstance(sub.func, ast.Attribute)
                and isinstance(sub.func.value, ast.Name)):
            receiver = sub.func.value.id
            states = out.get(receiver)
            if states is not None and ESCAPED not in states:
                protocol_receiver = receiver
                arg_kind = _is_arg(states)
                if sub.func.attr == "wait" \
                        and (_is_kind(states, "es.") or arg_kind):
                    if arg_kind:
                        out = out.set(receiver, frozenset({ARG_WAITED}))
                    else:
                        out = out.set(receiver, frozenset({ES_WAITED}))
                        for name, other in list(out.items()):
                            if RES_UNREADY + receiver in other:
                                out = out.set(name, frozenset({RES_READY}))
                elif sub.func.attr == "add" \
                        and (_is_kind(states, "es.") or arg_kind):
                    out = out.set(receiver, frozenset(
                        {ARG_PENDING if arg_kind else ES_PENDING}))
                elif sub.func.attr == "close" \
                        and (_is_kind(states, "file.") or arg_kind):
                    out = out.set(receiver, frozenset(
                        {ARG_CLOSED if arg_kind else FILE_CLOSED}))
                elif sub.func.attr == "finalize" \
                        and (_is_kind(states, "vol.") or arg_kind):
                    out = out.set(receiver, frozenset(
                        {ARG_FINAL if arg_kind else VOL_FINAL}))
        pairs = inter.call_effects(  # type: ignore[attr-defined]
            sub, driven=id(sub) in driven_ids) if inter is not None else None
        if pairs is not None:
            # Resolved project call: apply the callee's parameter effect
            # summary to each mapped argument instead of escaping it.
            for arg_expr, effects in pairs:
                if isinstance(arg_expr, ast.Name):
                    name = arg_expr.id
                    if name == protocol_receiver:
                        continue
                    states = out.get(name)
                    if states is None or ESCAPED in states:
                        continue
                    new = _apply_effects(states, effects)
                    if new != states:
                        out = out.set(name, new)
                        if new == frozenset({ES_WAITED}):
                            for rname, other in list(out.items()):
                                if RES_UNREADY + name in other:
                                    out = out.set(
                                        rname, frozenset({RES_READY}))
                else:
                    for leaf in walk_exprs([arg_expr]):
                        if isinstance(leaf, ast.Name) and leaf.id in out \
                                and leaf.id != protocol_receiver:
                            out = out.set(leaf.id, frozenset({ESCAPED}))
            continue
        # ``es=<name>`` keyword = operation insertion into that set.
        for kw in sub.keywords:
            if kw.arg == "es" and isinstance(kw.value, ast.Name):
                states = out.get(kw.value.id)
                if (states is not None and ESCAPED not in states
                        and (_is_kind(states, "es.") or _is_arg(states))):
                    out = out.set(kw.value.id, frozenset(
                        {ARG_PENDING if _is_arg(states) else ES_PENDING}))
        # Any other argument position escapes a tracked object.
        escaping: List[ast.expr] = list(sub.args)
        escaping.extend(kw.value for kw in sub.keywords if kw.arg != "es")
        for arg in escaping:
            for leaf in walk_exprs([arg]):
                if isinstance(leaf, ast.Name) and leaf.id in out:
                    states = out.get(leaf.id)
                    out = out.set(leaf.id, frozenset(
                        {ARG_ESCAPED if _is_arg(states) else ESCAPED}))

    # Storing into attributes/subscripts/containers or returning escapes.
    escape_roots: List[ast.expr] = []
    if isinstance(stmt, ast.Return) and stmt.value is not None:
        escape_roots.append(stmt.value)
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            if not isinstance(target, ast.Name):
                escape_roots.append(stmt.value)
    # Names inside a summarized call are owned by that summary (an
    # arg-storing callee already yields ``arg.escaped``): returning
    # ``helper(es)`` hands out helper's return value, not ``es``.
    summarized: set = set()
    if inter is not None:
        for root in escape_roots:
            for sub in walk_exprs([root]):
                if isinstance(sub, ast.Call) and inter.call_effects(  # type: ignore[attr-defined]
                        sub, driven=id(sub) in driven_ids) is not None:
                    summarized.update(
                        id(leaf) for leaf in walk_exprs([sub]))
    for root in escape_roots:
        for leaf in walk_exprs([root]):
            if isinstance(leaf, ast.Name) and isinstance(leaf.ctx, ast.Load) \
                    and leaf.id in out and id(leaf) not in summarized:
                states = out.get(leaf.id)
                out = out.set(leaf.id, frozenset(
                    {ARG_ESCAPED if _is_arg(states) else ESCAPED}))

    # Rebinding: creations seed fresh state, anything else untracks.
    if isinstance(stmt, (ast.Assign, ast.AnnAssign)) and stmt.value is not None:
        targets = stmt.targets if isinstance(stmt, ast.Assign) \
            else [stmt.target]
        created = _creation_states(stmt.value)
        carrier = _read_binding(stmt.value, env)
        returned = _summary_return_states(stmt.value, inter)
        for target in targets:
            if isinstance(target, ast.Name):
                if created is not None:
                    out = out.set(target.id, created)
                elif carrier is not None:
                    out = out.set(target.id,
                                  frozenset({RES_UNREADY + carrier}))
                elif returned is not None:
                    out = out.set(target.id, returned)
                elif isinstance(stmt.value, ast.Name) \
                        and stmt.value.id in out:
                    # Aliasing: both names stop being tracked.
                    aliased = out.get(stmt.value.id)
                    out = out.set(stmt.value.id, frozenset(
                        {ARG_ESCAPED if _is_arg(aliased) else ESCAPED}))
                    out = out.remove(target.id)
                else:
                    out = out.remove(target.id)
            else:
                for name in target_names(target):
                    out = out.remove(name)
    elif isinstance(stmt, ast.AugAssign):
        for name in target_names(stmt.target):
            out = out.remove(name)
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        for name in target_names(stmt.target):
            out = out.remove(name)
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if item.optional_vars is not None:
                for name in target_names(item.optional_vars):
                    out = out.remove(name)
    elif isinstance(stmt, ast.Delete):
        for target in stmt.targets:
            for name in target_names(target):
                out = out.remove(name)
    elif isinstance(stmt, ast.excepthandler) and stmt.name:
        out = out.remove(stmt.name)
    elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                           ast.ClassDef)):
        out = out.remove(stmt.name)

    return out


def _analyze(cfg: CFG, inter: Optional[object] = None
             ) -> Tuple[Dict[int, Env], List[Violation],
                        Dict[str, Tuple[int, int]],
                        Dict[str, bool]]:
    """Solve, then replay for findings, creation sites and vol usage.

    Cached on the CFG object: all four RC40x rules share one solve (the
    ``inter`` view is constant within one lint run, so the cache never
    mixes modes).
    """
    cached = getattr(cfg, "_typestate", None)
    if cached is not None:
        return cached
    in_states = solve(cfg, _TypestateAnalysis(inter))
    findings: List[Violation] = []
    created_at: Dict[str, Tuple[int, int]] = {}
    vol_used: Dict[str, bool] = {}
    for node in cfg.stmt_nodes():
        stmt = node.ast_node
        if isinstance(stmt, ast.Assign) and stmt.value is not None:
            states = _creation_states(stmt.value)
            if states is None:
                states = _summary_return_states(stmt.value, inter)
            if states is not None:
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        created_at.setdefault(
                            target.id, (stmt.lineno, stmt.col_offset))
        for sub in walk_exprs(header_exprs(node)):
            if (isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and isinstance(sub.func.value, ast.Name)):
                vol_used[sub.func.value.id] = True
        if node.index in in_states:
            _apply(node, in_states[node.index], report=findings,
                   inter=inter)
    result = (in_states, findings, created_at, vol_used)
    cfg._typestate = result  # type: ignore[attr-defined]
    return result


def _site(created_at: Dict[str, Tuple[int, int]], name: str,
          cfg: CFG) -> Tuple[int, int]:
    return created_at.get(name, (cfg.func.lineno, cfg.func.col_offset))


@register
class RC401(FlowRule):
    id = "RC401"
    title = ("event set with inserted operations never waited before "
             "file close or function exit")
    hint = ("call 'yield from es.wait()' before closing the file or "
            "returning; un-waited operations have undefined completion "
            "state (paper SIII-B protocol)")
    scope = "repo"

    def check_function(self, ctx: LintContext,
                       cfg: CFG) -> Iterator[Violation]:
        in_states, findings, created_at, _ = _analyze(cfg, ctx.inter)
        for line, col, message in findings:
            if "not waited when" in message:
                yield line, col, message
        exit_env = in_states.get(cfg.exit)
        if exit_env is None:
            return
        for name, states in exit_env.items():
            if ES_PENDING in states and ESCAPED not in states:
                line, col = _site(created_at, name, cfg)
                yield (line, col,
                       f"event set {name!r} has operations inserted but "
                       f"is never waited before the function returns")


@register
class RC402(FlowRule):
    id = "RC402"
    title = "async read result used before es.wait() on its event set"
    hint = ("wait on the event set that carries the read before touching "
            "its result; until then the buffer contents are undefined")
    scope = "repo"

    def check_function(self, ctx: LintContext,
                       cfg: CFG) -> Iterator[Violation]:
        _, findings, _, _ = _analyze(cfg, ctx.inter)
        for line, col, message in findings:
            if "used before" in message:
                yield line, col, message


@register
class RC403(FlowRule):
    id = "RC403"
    title = "double close / use after close of a file or event set"
    hint = ("close each handle exactly once and do not touch it "
            "afterwards; re-open instead of reusing a closed handle")
    scope = "repo"

    def check_function(self, ctx: LintContext,
                       cfg: CFG) -> Iterator[Violation]:
        _, findings, _, _ = _analyze(cfg, ctx.inter)
        for line, col, message in findings:
            if "closed twice" in message or "after close" in message:
                yield line, col, message


@register
class RC404(FlowRule):
    id = "RC404"
    title = "AsyncVOL without a matching finalize() on all paths"
    hint = ("call 'yield from vol.finalize(ctx)' on every path out of "
            "the function (a try/finally suits), so the background "
            "worker drains (static twin of runtime RT204)")
    scope = "repo"

    def check_function(self, ctx: LintContext,
                       cfg: CFG) -> Iterator[Violation]:
        in_states, _, created_at, vol_used = _analyze(cfg, ctx.inter)
        exit_env = in_states.get(cfg.exit)
        if exit_env is None:
            return
        for name, states in exit_env.items():
            if ESCAPED in states or not _is_kind(states, "vol."):
                continue
            if VOL_LIVE in states and VOL_FINAL in states:
                line, col = _site(created_at, name, cfg)
                yield (line, col,
                       f"AsyncVOL {name!r} is finalized on some paths "
                       f"but not all")
            elif (states - {UNBOUND} == frozenset({VOL_LIVE})
                    and vol_used.get(name)):
                line, col = _site(created_at, name, cfg)
                yield (line, col,
                       f"AsyncVOL {name!r} is used but never finalized")
