"""Determinism rules (RC1xx): no wall clock, no unseeded entropy.

The byte-identical figure gates (fig3a/fig4c/fig8) and the same-seed
replay gates of the fault and scheduler layers hold only if nothing in
a simulation path consults the host: simulated time comes from
``engine.now`` and every random draw from an explicitly seeded
generator (``random.Random(seed)`` / ``np.random.default_rng(seed)``).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.check.rules import LintContext, Rule, register

__all__ = ["UnseededRandomRule", "WallClockRule", "dotted_name"]


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


#: Host-clock and OS-entropy calls that must never appear in sim paths.
_WALL_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "os.urandom",
    "uuid.uuid1",
    "uuid.uuid4",
}

#: Wall-clock calls matched by their trailing components, so both
#: ``datetime.now()`` and ``datetime.datetime.now()`` are caught.
_WALL_CLOCK_SUFFIXES = ("datetime.now", "datetime.utcnow", "date.today")


@register
class WallClockRule(Rule):
    """RC101 — wall clock / OS entropy in a simulation path."""

    id = "RC101"
    title = "wall clock or OS entropy in a simulation path"
    hint = (
        "derive time from engine.now and entropy from a seeded "
        "random.Random(seed) / np.random.default_rng(seed)"
    )
    scope = "sim"

    def check(self, ctx: LintContext) -> Iterator[tuple[int, int, str]]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            if (
                name in _WALL_CLOCK_CALLS
                or name.startswith("secrets.")
                or name in _WALL_CLOCK_SUFFIXES
                or name.endswith(tuple("." + s for s in _WALL_CLOCK_SUFFIXES))
            ):
                yield (node.lineno, node.col_offset,
                       f"call to {name}() reads the host clock or OS "
                       f"entropy inside a simulation path")


#: Functions of the process-global ``random`` module RNG.
_GLOBAL_RANDOM_FNS = {
    "betavariate", "choice", "choices", "expovariate", "gauss",
    "getrandbits", "lognormvariate", "normalvariate", "paretovariate",
    "randbytes", "randint", "random", "randrange", "sample", "seed",
    "shuffle", "triangular", "uniform", "vonmisesvariate",
    "weibullvariate",
}

#: Legacy functions of the process-global numpy RNG.
_GLOBAL_NP_RANDOM_FNS = {
    "choice", "normal", "permutation", "rand", "randint", "randn",
    "random", "random_sample", "seed", "shuffle", "uniform",
}


@register
class UnseededRandomRule(Rule):
    """RC102 — process-global or unseeded RNG in a simulation path."""

    id = "RC102"
    title = "process-global or unseeded RNG in a simulation path"
    hint = (
        "draw from an explicitly seeded generator: random.Random(seed) "
        "or np.random.default_rng((seed, salt))"
    )
    scope = "sim"

    def check(self, ctx: LintContext) -> Iterator[tuple[int, int, str]]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            if name in {f"random.{fn}" for fn in _GLOBAL_RANDOM_FNS}:
                yield (node.lineno, node.col_offset,
                       f"{name}() draws from the process-global RNG "
                       f"(shared, unseedable per-run state)")
            elif name == "random.Random" and not node.args:
                yield (node.lineno, node.col_offset,
                       "random.Random() without a seed is OS-entropy "
                       "seeded")
            elif name in {f"np.random.{fn}" for fn in _GLOBAL_NP_RANDOM_FNS} \
                    or name in {f"numpy.random.{fn}"
                                for fn in _GLOBAL_NP_RANDOM_FNS}:
                yield (node.lineno, node.col_offset,
                       f"{name}() draws from numpy's process-global "
                       f"legacy RNG")
            elif name in ("np.random.default_rng",
                          "numpy.random.default_rng") and not node.args:
                yield (node.lineno, node.col_offset,
                       "np.random.default_rng() without a seed is "
                       "OS-entropy seeded")
