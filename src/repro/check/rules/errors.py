"""Error-discipline rules (RC2xx): typed, catchable, propagating.

The fault-injection layer's recovery ladder (PR 2) works because every
injected fault is a :class:`repro.faults.FaultError` subclass and
recovery code catches exactly that.  Bare ``except:`` swallows
``Interrupted`` (breaking scheduler walltime kills) and engine
invariant violations; ``raise Exception`` gives callers nothing to
catch; an exception class based on bare ``Exception`` in a sim path
escapes the taxonomy that the retry/fallback logic dispatches on.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.check.rules import LintContext, Rule, register
from repro.check.rules.determinism import dotted_name

__all__ = ["BareExceptRule", "GenericRaiseRule", "TaxonomyRule"]


@register
class BareExceptRule(Rule):
    """RC201 — bare ``except:`` clause."""

    id = "RC201"
    title = "bare except clause"
    hint = (
        "catch the specific error type (FaultError subclass, "
        "SimulationError, ...); 'except Exception' at the broadest"
    )
    scope = "repo"

    def check(self, ctx: LintContext) -> Iterator[tuple[int, int, str]]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield (node.lineno, node.col_offset,
                       "bare 'except:' also swallows Interrupted, "
                       "DeadlineExceeded and engine invariant errors")


@register
class GenericRaiseRule(Rule):
    """RC202 — ``raise Exception(...)`` / ``raise BaseException(...)``."""

    id = "RC202"
    title = "raising a generic Exception"
    hint = (
        "raise a typed error (ValueError, RuntimeError, a FaultError "
        "subclass, ...) so callers can catch it precisely"
    )
    scope = "repo"

    def check(self, ctx: LintContext) -> Iterator[tuple[int, int, str]]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            if isinstance(exc, ast.Call):
                exc = exc.func
            name = dotted_name(exc)
            if name in ("Exception", "BaseException"):
                yield (node.lineno, node.col_offset,
                       f"raise {name} gives callers nothing specific "
                       f"to catch")


@register
class TaxonomyRule(Rule):
    """RC203 — exception class outside the typed taxonomy."""

    id = "RC203"
    title = "sim-path exception class derives from bare Exception"
    hint = (
        "derive from the FaultError / TransientIOError taxonomy "
        "(repro.faults.errors), SimulationError, or a specific builtin "
        "(ValueError, TimeoutError, ...)"
    )
    scope = "sim"

    def check(self, ctx: LintContext) -> Iterator[tuple[int, int, str]]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for base in node.bases:
                name = dotted_name(base)
                if name in ("Exception", "BaseException"):
                    yield (node.lineno, node.col_offset,
                           f"exception class {node.name} derives from "
                           f"bare {name}; recovery code dispatches on "
                           f"the typed taxonomy")
