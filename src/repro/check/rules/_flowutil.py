"""Shared AST helpers for the flow-tier rule modules (RC4xx/RC5xx).

These operate on CFG nodes, so they must answer "which expressions are
evaluated *at this node*" — for compound statements that is the header
only (the ``if`` test, the ``for`` iterable, the ``with`` items), never
the suite, whose statements are separate nodes.  Nested ``def``/
``lambda`` bodies are excluded everywhere: they execute later (or
never) and are analyzed with their own CFGs; for typestate purposes a
captured variable simply escapes.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from repro.check.cfg import CFGNode

__all__ = [
    "captured_names",
    "dotted",
    "header_exprs",
    "target_names",
    "walk_exprs",
]


def dotted(expr: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def header_exprs(node: CFGNode) -> List[ast.expr]:
    """Expressions evaluated when control reaches this CFG node."""
    stmt = node.ast_node
    if stmt is None:
        return []
    if isinstance(stmt, ast.excepthandler):
        return [stmt.type] if stmt.type is not None else []
    if isinstance(stmt, ast.If) or isinstance(stmt, ast.While):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, ast.Match):
        return [stmt.subject]
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                         ast.ClassDef)):
        # Decorators and parameter defaults run at definition time; the
        # body does not (captures are handled via captured_names).
        exprs: List[ast.expr] = list(stmt.decorator_list)
        if not isinstance(stmt, ast.ClassDef):
            exprs.extend(stmt.args.defaults)
            exprs.extend(d for d in stmt.args.kw_defaults if d is not None)
        return exprs
    # Simple statement: every expression it contains.
    return [child for child in ast.iter_child_nodes(stmt)
            if isinstance(child, ast.expr)]


def walk_exprs(exprs: List[ast.expr]) -> Iterator[ast.AST]:
    """Pre-order walk of ``exprs`` that does not enter lambda bodies."""
    stack: List[ast.AST] = list(reversed(exprs))
    while stack:
        item = stack.pop()
        yield item
        if isinstance(item, ast.Lambda):
            continue  # body runs later; captures escape instead
        stack.extend(reversed(list(ast.iter_child_nodes(item))))


def captured_names(node: CFGNode) -> Set[str]:
    """Names a nested ``def``/``lambda`` at this node reads from the
    enclosing scope (approximated as: all Name loads in the body that
    the body itself never binds)."""
    stmt = node.ast_node
    roots: List[ast.AST] = []
    loads: Set[str] = set()
    bound: Set[str] = set()
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
        roots = list(stmt.body)
        args = stmt.args
        for arg in (args.args + args.posonlyargs + args.kwonlyargs):
            bound.add(arg.arg)
        for extra in (args.vararg, args.kwarg):
            if extra is not None:
                bound.add(extra.arg)
    elif stmt is not None:
        roots = [child for child in ast.walk(stmt)
                 if isinstance(child, ast.Lambda)]
    for root in roots:
        parts: List[ast.AST] = [root]
        if isinstance(root, ast.Lambda):
            bound.update(arg.arg for arg in root.args.args)
            bound.update(arg.arg for arg in root.args.kwonlyargs)
            parts = [root.body]
        for part in parts:
            for sub in ast.walk(part):
                if isinstance(sub, ast.Name):
                    if isinstance(sub.ctx, ast.Load):
                        loads.add(sub.id)
                    else:
                        bound.add(sub.id)
    return loads - bound


def target_names(target: ast.expr) -> List[str]:
    """Plain names bound by an assignment/loop/``with`` target."""
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        names: List[str] = []
        for element in target.elts:
            names.extend(target_names(element))
        return names
    if isinstance(target, ast.Starred):
        return target_names(target.value)
    return []
