"""Whole-project concurrency rules (conc tier, RC6xx).

The heavy lifting — the lock-set dataflow, the effect summaries, the
acquisition-order graph and the wait/trigger matching — lives in
:mod:`repro.check.concurrency` and runs once per project inside the
summary pass.  The :class:`~repro.check.concurrency.ConcIndex` it
produces pre-computes every finding with its rule id, so the rule
classes here are thin per-file filters: that keeps the output
deterministic no matter how files are sharded across lint workers.

These rules only run when the :class:`LintContext` carries a
``FileInter`` view whose context has an assembled ``ConcIndex``
(``repro check --concurrency``); otherwise they are silent and the
flat/flow/inter tiers are unaffected.

- **RC601** — two lock-kind primitives are acquired in opposite orders
  somewhere in the project (an acquisition-order cycle): two
  concurrent processes can each hold one and wait forever for the
  other.  The static twin of a sim hang.
- **RC602** — a blocking wait (``Queue.get``, ``StagingBuffer.reserve``,
  ``yield ev`` on an engine event) on a primitive that no reachable
  code ever triggers: the waiter sleeps forever.  The static twin of a
  lost wakeup.
- **RC603** — two processes spawned by the same function write
  overlapping constant regions of one dataset with no happens-before
  edge between them.  The static twin of the runtime RT101 race.
- **RC604** — a claim (``Semaphore.acquire``, ``CacheTier.take``, a
  held ``Reservation``) is released on some paths but still held on
  others at function exit — typically an exception path that skips the
  release.  The static twin of the runtime RT201 leak.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.check.rules import LintContext, Rule, register

__all__ = ["RC601", "RC602", "RC603", "RC604"]

Violation = Tuple[int, int, str]


class _ConcRule(Rule):
    """Filter the project-wide ``ConcIndex`` down to one file + rule."""

    scope = "repo"
    tier = "conc"

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        conc = getattr(ctx.inter, "conc", None)
        if conc is None:
            return
        for rule_id, line, col, message in conc.findings_for(ctx.path):
            if rule_id == self.id:
                yield line, col, message


@register
class RC601(_ConcRule):
    id = "RC601"
    title = "acquisition-order cycle (static deadlock)"
    hint = ("acquire the primitives in one global order everywhere "
            "(or collapse them into a single lock); any cycle in the "
            "acquisition-order graph lets two processes deadlock")


@register
class RC602(_ConcRule):
    id = "RC602"
    title = "blocking wait with no reachable trigger (lost wakeup)"
    hint = ("spawn the producer that puts/closes the queue (or "
            "succeeds the event / releases the staging reservation) "
            "before blocking on it, or drop the dead wait")


@register
class RC603(_ConcRule):
    id = "RC603"
    title = "conflicting region writes without happens-before"
    hint = ("order the writers with a barrier/event/queue (any "
            "synchronization inside the task excuses it), or split "
            "the writers onto disjoint regions")


@register
class RC604(_ConcRule):
    id = "RC604"
    title = "claim released on some paths only (static leak)"
    hint = ("release the claim in a try/finally so exception exits "
            "cannot leak it; the strict CacheTier/Reservation ledgers "
            "raise on double release, so balance every path")
