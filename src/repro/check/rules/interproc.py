"""Summary-driven interprocedural rules (inter tier).

These rules only run when the :class:`LintContext` carries a
``FileInter`` view (``repro check --inter``); without it they are
silent, so the flat/flow tiers are unaffected.

- **RC405** — a helper whose summary says "returns an object carrying
  inserted-but-unwaited operations" is called and its value discarded:
  the caller just lost the only handle to the pending I/O.
- **RC110 / RC111** — cross-function determinism taint, the
  interprocedural twins of RC101/RC102: a value derived from the wall
  clock (RC110) or unseeded RNG (RC111) crosses a call boundary into a
  simulation path, either as a tainted argument to a sim-path function
  or as a summarized tainted return value consumed inside a sim path.
  The intraprocedural rules only see sources written *inside* sim
  files; these catch the helper-mediated flows.

The summary machinery is imported lazily inside the check methods:
this module is imported by the rules registry at package-import time,
and :mod:`repro.check.summaries` imports the rule modules for their
transfer functions — the lazy import breaks that cycle.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from repro.check.cfg import CFG
from repro.check.dataflow import FixpointDiverged
from repro.check.domains import UNBOUND
from repro.check.rules import FlowRule, LintContext, register
from repro.check.rules._flowutil import header_exprs, walk_exprs
from repro.check.rules.asyncstate import ES_NEW, ES_PENDING

__all__ = ["RC110", "RC111", "RC405"]

Violation = Tuple[int, int, str]

_PARAM = "param:"


@register
class RC405(FlowRule):
    id = "RC405"
    title = "helper's returned un-waited operation is discarded"
    hint = ("bind the helper's return value and wait its event set "
            "(or wait inside the helper); discarding it loses the only "
            "handle to the pending operations")
    scope = "repo"
    tier = "inter"

    def check_function(self, ctx: LintContext,
                       cfg: CFG) -> Iterator[Violation]:
        inter = ctx.inter
        if inter is None:
            return
        for node in cfg.stmt_nodes():
            stmt = node.ast_node
            if not isinstance(stmt, ast.Expr):
                continue
            value = stmt.value
            driven = isinstance(value, (ast.Await, ast.YieldFrom))
            inner = value.value if driven else value  # type: ignore[attr-defined]
            if not isinstance(inner, ast.Call):
                continue
            states = inter.return_states_for_call(  # type: ignore[attr-defined]
                inner, driven=driven)
            if states is None or UNBOUND in states:
                continue
            if ES_PENDING in states and states <= {ES_PENDING, ES_NEW}:
                qual = inter.resolve(inner)  # type: ignore[attr-defined]
                yield (stmt.lineno, stmt.col_offset,
                       f"result of {qual}() carries operations inserted "
                       f"but not waited and is discarded")


class _TaintFlowRule(FlowRule):
    """Shared engine for RC110/RC111; subclasses pick the token."""

    tier = "inter"
    scope = "repo"
    token = ""  # "clock" | "rng"
    source_desc = ""

    def check_function(self, ctx: LintContext,
                       cfg: CFG) -> Iterator[Violation]:
        inter = ctx.inter
        if inter is None:
            return
        from repro.check.summaries import _expr_taint, taint_states
        try:
            in_states = taint_states(cfg, inter)
        except FixpointDiverged:
            return
        for node in cfg.stmt_nodes():
            env = in_states.get(node.index)
            if env is None:
                continue
            for sub in walk_exprs(header_exprs(node)):
                if not isinstance(sub, ast.Call):
                    continue
                qual = inter.resolve(sub)  # type: ignore[attr-defined]
                if qual is None:
                    continue
                summary = inter.summaries.get(qual)  # type: ignore[attr-defined]
                if summary is None:
                    continue
                mapping = inter.param_index_map(sub)  # type: ignore[attr-defined]
                if inter.callee_in_sim(qual):  # type: ignore[attr-defined]
                    for idx, expr in sorted(mapping.items()) if mapping \
                            else []:
                        taint = _expr_taint(expr, env, inter)
                        if self.token in taint:
                            param = summary.params[idx] \
                                if idx < len(summary.params) else str(idx)
                            yield (expr.lineno, expr.col_offset,
                                   f"argument {param!r} of {qual}() is "
                                   f"derived from {self.source_desc} and "
                                   f"flows into a simulation path")
                if ctx.in_sim_path:
                    effective = set()
                    for token in summary.return_taint:
                        if token.startswith(_PARAM):
                            idx = int(token[len(_PARAM):])
                            expr = mapping.get(idx) if mapping else None
                            if expr is not None:
                                effective |= _expr_taint(expr, env, inter)
                        else:
                            effective.add(token)
                    if self.token in effective:
                        yield (sub.lineno, sub.col_offset,
                               f"{qual}() returns a value derived from "
                               f"{self.source_desc} inside a simulation "
                               f"path")


@register
class RC110(_TaintFlowRule):
    id = "RC110"
    title = "wall-clock-derived value crosses a call into a sim path"
    hint = ("the static cross-function twin of RC101: derive time from "
            "engine.now instead of passing host-clock values through "
            "helpers into simulation state")
    token = "clock"
    source_desc = "the host clock or OS entropy"


@register
class RC111(_TaintFlowRule):
    id = "RC111"
    title = "unseeded-RNG-derived value crosses a call into a sim path"
    hint = ("the static cross-function twin of RC102: draw from an "
            "explicitly seeded random.Random(seed) / "
            "np.random.default_rng(seed) before values reach a "
            "simulation path")
    token = "rng"
    source_desc = "an unseeded or process-global RNG"
