"""Opt-in runtime checker: happens-before races and resource leaks.

The static half of ``repro check`` proves source-level invariants; this
module watches a *running* simulation through the zero-cost
instrumentation seam (:mod:`repro.check.hooks`) and reports two classes
of dynamic violations:

**Races (RT101).**  A vector-clock happens-before detector over the
simulated concurrency structure.  Every simulated process carries a
sparse vector clock; synchronization edges are derived from the
primitives themselves:

- event trigger → waiter wakeup (which covers joins, ``AllOf``/
  ``AnyOf``, semaphore handoff, barrier release, ``timeout_guard``),
- ``Queue.put`` → ``get``/``pop_if`` (the async VOL's work handoff),
- semaphore / staging-buffer release → subsequent acquire,
- barrier arrival → barrier release,
- process spawn (parent → child).

Tracked shared state — dataset payload regions
(:meth:`StoredDataset.apply_write` / ``read_payload``) — is checked on
every access: two accesses to the same region, at least one a write,
with no happens-before path between them, is exactly the data race the
async connector's transactional copy exists to prevent (§III-A).

**Leaks (RT2xx).**  A resource auditor runs at every engine drain
(``Engine.run`` returning with an empty queue) and at :meth:`report`:
``Reservation``s never released (RT201), ``EventSet``s with operations
still pending (RT202), failed ``SimEvent``s whose exception nobody
ever observed (RT203), and processes still parked when the event heap
drained (RT204).

The checker is strictly observational: it never schedules callbacks or
mutates simulation state, so an instrumented run's event schedule — and
every emitted trace — is byte-for-byte identical to an uninstrumented
one.  Detection scope is one engine drain: access history is flushed
once an engine's queue empties (sequential engine runs cannot race).
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterator, Optional

from repro.check import hooks as _hooks

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Engine, Process, SimEvent

__all__ = ["RuntimeChecker", "RuntimeFinding"]

#: Safety valve: stop accumulating findings past this count.
_MAX_FINDINGS = 500


@dataclass(frozen=True)
class RuntimeFinding:
    """One dynamic violation observed by the runtime checker."""

    rule_id: str
    message: str

    def format(self) -> str:
        return f"{self.rule_id} {self.message}"


class _Clock:
    """Sparse vector clock with copy-on-write snapshots.

    ``vec`` maps process id -> last-known tick.  ``snapshot`` freezes
    the dict and hands out a shared reference (events triggered between
    two resumes of the same process share one snapshot); the next
    mutation copies.  ``join`` skips already-subsumed merges, so the
    steady-state per-event cost is O(1).
    """

    __slots__ = ("pid", "tick", "vec", "frozen")

    def __init__(self, pid: int, parent_vec: Optional[dict] = None) -> None:
        self.pid = pid
        self.tick = 0
        self.vec: dict[int, int] = dict(parent_vec) if parent_vec else {}
        self.vec[pid] = 0
        self.frozen = False

    def bump(self) -> None:
        """Advance this process's own component (one per resume)."""
        if self.frozen:
            self.vec = dict(self.vec)
            self.frozen = False
        self.tick += 1
        self.vec[self.pid] = self.tick

    def snapshot(self) -> dict[int, int]:
        """Freeze and share the current vector."""
        self.frozen = True
        return self.vec

    def join(self, other: Optional[dict]) -> None:
        """Merge ``other`` in (no-op when already subsumed)."""
        if other is None or other is self.vec:
            return
        vec = self.vec
        for pid, tick in other.items():
            if vec.get(pid, -1) < tick:
                break
        else:
            return
        if self.frozen:
            self.vec = vec = dict(vec)
            self.frozen = False
        for pid, tick in other.items():
            if vec.get(pid, -1) < tick:
                vec[pid] = tick

    def saw(self, pid: int, tick: int) -> bool:
        """Whether the access ``(pid, tick)`` happens-before this clock."""
        return self.vec.get(pid, -1) >= tick


class _Access:
    """Last write plus per-process reads since, for one state key."""

    __slots__ = ("write", "reads")

    def __init__(self) -> None:
        self.write: Optional[tuple[int, int, str]] = None  # pid, tick, detail
        self.reads: dict[int, tuple[int, str]] = {}


class RuntimeChecker:
    """The happens-before race detector and resource-leak auditor.

    Usage::

        checker = RuntimeChecker()
        with checker.installed():
            ...  # build engines, run the pipeline under test
        findings = checker.report()

    Only one checker can be installed at a time (the seam is a module
    global); installation is what makes the instrumentation points in
    the engine, the primitives and the async VOL live.
    """

    def __init__(self) -> None:
        self._next_pid = 0
        self._root = self._new_clock()
        self._stack: list[_Clock] = []
        #: Live processes of the current drain scope (strong refs; the
        #: per-process clock lives in the ``Process._vc`` slot).
        self._procs: list["Process"] = []
        #: Failed events whose exception has not been observed yet:
        #: id(event) -> (event, had_waiters_at_trigger).
        self._failed: dict[int, tuple["SimEvent", bool]] = {}
        #: Reservations and event sets of the current drain scope.
        self._reservations: list[Any] = []
        self._eventsets: list[Any] = []
        #: Tracked-state access table of the current drain scope.
        self._accesses: dict[Any, _Access] = {}
        self._reported: set[Any] = set()
        self.findings: list[RuntimeFinding] = []
        #: Engine drains observed (exposed for tests/diagnostics).
        self.drains = 0

    # -- lifecycle -----------------------------------------------------
    def install(self) -> None:
        """Make this checker live on the instrumentation seam."""
        if _hooks.checker is not None:
            raise RuntimeError("a RuntimeChecker is already installed")
        _hooks.checker = self

    def uninstall(self) -> None:
        """Detach from the seam (no-op if another checker is live)."""
        if _hooks.checker is self:
            _hooks.checker = None

    @contextlib.contextmanager
    def installed(self) -> Iterator["RuntimeChecker"]:
        """Context manager around :meth:`install` / :meth:`uninstall`."""
        self.install()
        try:
            yield self
        finally:
            self.uninstall()

    # -- internals -----------------------------------------------------
    def _new_clock(self, parent_vec: Optional[dict] = None) -> _Clock:
        clock = _Clock(self._next_pid, parent_vec)
        self._next_pid += 1
        return clock

    def _current(self) -> _Clock:
        return self._stack[-1] if self._stack else self._root

    def _clock_of(self, proc: "Process") -> _Clock:
        clock = getattr(proc, "_vc", None)
        if clock is None:
            # Spawned before install: adopt the root's view.
            clock = self._new_clock(self._root.snapshot())
            proc._vc = clock
            self._procs.append(proc)
        return clock

    def _add_finding(self, rule_id: str, message: str) -> None:
        if len(self.findings) < _MAX_FINDINGS:
            self.findings.append(RuntimeFinding(rule_id, message))

    # -- engine hooks (called from repro.sim.engine) -------------------
    def on_spawn(self, proc: "Process") -> None:
        proc._vc = self._new_clock(self._current().snapshot())
        self._procs.append(proc)

    def on_resume(self, proc: "Process") -> None:
        clock = self._clock_of(proc)
        clock.bump()
        self._stack.append(clock)

    def on_suspend(self, proc: "Process") -> None:
        if self._stack:
            self._stack.pop()

    def on_wakeup(self, proc: "Process", event: "SimEvent") -> None:
        self._clock_of(proc).join(getattr(event, "_clock", None))
        if event._exc is not None:
            self._failed.pop(id(event), None)

    def on_trigger(self, event: "SimEvent") -> None:
        event._clock = self._current().snapshot()
        if event._exc is not None:
            self._failed[id(event)] = (event, bool(event.callbacks))

    def on_error_observed(self, event: "SimEvent") -> None:
        """An event's failure was harvested (EventSet error accounting)."""
        self._failed.pop(id(event), None)

    def on_drained(self, engine: "Engine") -> None:
        """``Engine.run`` returned with an empty queue: audit + flush."""
        self.drains += 1
        self._audit_drain_scope(engine)
        self._procs = [p for p in self._procs if p.engine is not engine]
        self._reservations = [r for r in self._reservations
                              if r.buffer.engine is not engine]
        self._eventsets = [es for es in self._eventsets
                           if es.engine is not engine]
        self._accesses = {}
        self._root = self._new_clock()
        self._stack = []

    # -- synchronization-object hooks (primitives, staging buffer) -----
    def on_release(self, obj: Any) -> None:
        """Publish the current clock into ``obj``'s clock (lock-release
        edge: everything before this release happens-before whatever
        acquires ``obj`` next)."""
        vec = self._current().snapshot()
        oc = getattr(obj, "_rc_clock", None)
        if oc is None:
            obj._rc_clock = dict(vec)
            return
        for pid, tick in vec.items():
            if oc.get(pid, -1) < tick:
                oc[pid] = tick

    def on_acquire(self, obj: Any) -> None:
        """Join ``obj``'s clock into the current process (acquire edge)."""
        oc = getattr(obj, "_rc_clock", None)
        if oc is not None:
            self._current().join(oc)

    # -- resource registration hooks -----------------------------------
    def on_reservation(self, reservation: Any) -> None:
        self._reservations.append(reservation)

    def on_eventset(self, eventset: Any) -> None:
        self._eventsets.append(eventset)

    # -- tracked shared state ------------------------------------------
    def on_state(self, key: Any, write: bool, detail: str) -> None:
        """Record one access to tracked shared state and check ordering."""
        clock = self._current()
        access = self._accesses.get(key)
        if access is None:
            access = self._accesses[key] = _Access()
        if access.write is not None:
            w_pid, w_tick, w_detail = access.write
            if w_pid != clock.pid and not clock.saw(w_pid, w_tick):
                self._race(key, "write", w_detail, "write" if write else "read",
                           detail, w_pid, clock.pid)
        if write:
            for r_pid, (r_tick, r_detail) in access.reads.items():
                if r_pid != clock.pid and not clock.saw(r_pid, r_tick):
                    self._race(key, "read", r_detail, "write", detail,
                               r_pid, clock.pid)
            access.write = (clock.pid, clock.tick, detail)
            access.reads.clear()
        else:
            access.reads[clock.pid] = (clock.tick, detail)

    def _race(self, key: Any, kind_a: str, detail_a: str, kind_b: str,
              detail_b: str, pid_a: int, pid_b: int) -> None:
        token = (key, kind_a, kind_b)
        if token in self._reported:
            return
        self._reported.add(token)
        self._add_finding(
            "RT101",
            f"unsynchronized {kind_a}/{kind_b} on {detail_b}: "
            f"{kind_a} by process {pid_a} and {kind_b} by process "
            f"{pid_b} have no happens-before edge",
        )

    # -- audits ---------------------------------------------------------
    def _audit_drain_scope(self, engine: Optional["Engine"]) -> None:
        for proc in self._procs:
            if engine is not None and proc.engine is not engine:
                continue
            if proc.alive:
                waiting = proc._waiting
                where = (f" (waiting on {waiting.name!r})"
                         if waiting is not None else "")
                self._add_finding(
                    "RT204",
                    f"process {proc.name!r} still parked when the event "
                    f"heap drained{where}",
                )
        for res in self._reservations:
            if engine is not None and res.buffer.engine is not engine:
                continue
            if res.state in ("held", "waiting"):
                self._add_finding(
                    "RT201",
                    f"reservation of {res.nbytes:.3g}B on "
                    f"{res.buffer.name} never released "
                    f"(state {res.state!r} at teardown)",
                )
        for es in self._eventsets:
            if engine is not None and es.engine is not engine:
                continue
            pending = sum(1 for _, ev in es._pending if not ev._processed)
            if pending:
                self._add_finding(
                    "RT202",
                    f"event set {es.name!r} torn down with {pending} "
                    f"operation(s) still pending (H5ESwait never drained "
                    f"it)",
                )

    def report(self) -> list[RuntimeFinding]:
        """Audit whatever is still live, then return all findings."""
        self._audit_drain_scope(None)
        self._procs = []
        self._reservations = []
        self._eventsets = []
        for event, had_waiters in self._failed.values():
            if not had_waiters:
                self._add_finding(
                    "RT203",
                    f"failed event {event.name!r} was never awaited: "
                    f"{type(event._exc).__name__} swallowed silently",
                )
        self._failed = {}
        return list(self.findings)

    def assert_clean(self) -> None:
        """Raise ``AssertionError`` with the full report if anything fired."""
        findings = self.report()
        if findings:
            body = "\n".join(f.format() for f in findings)
            raise AssertionError(
                f"runtime checker reported {len(findings)} finding(s):\n{body}"
            )
