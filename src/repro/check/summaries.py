"""Per-function effect summaries for the interprocedural tier.

Each project function gets a :class:`FunctionSummary` — a tiny, plain
abstraction of what it does to its arguments and what its return value
carries — computed by running the *existing* flow-tier transfer
functions over the function's CFG with parameters seeded abstractly:

- typestate effects use :mod:`repro.check.rules.asyncstate`'s transfer
  with every parameter seeded to the ``arg`` token family, so the exit
  environment directly reads off "waits param 1 on all paths" /
  "closes param 0" / "escapes param 2";
- return dimension uses :mod:`repro.check.rules.units`' inference on
  every ``return`` expression (an explicit annotation wins);
- determinism taint runs a small forward taint analysis whose sources
  are the RC101/RC102 wall-clock/RNG tables and whose ``param:<i>``
  tokens record pass-through, so taint composes across call chains.

Summaries for functions in one strongly connected component (mutual
recursion) are iterated to a fixpoint from an optimistic seed; if the
component does not converge within a small bound — or any member blows
the :class:`~repro.check.dataflow.FixpointDiverged` budget — every
member degrades to the conservative summary (all parameters escaped,
nothing known about the return), which is exactly the old escape hedge.

The caller-facing objects are :class:`InterContext` (whole-project:
index + call graph + summaries) and :class:`FileInter` (one file's
``ast.Call -> summary`` view, keyed by node identity so it must be
built over the same tree the rules walk).  Generator and ``async``
callees only apply their effects when the call is *driven* (``yield
from`` / ``await``) — a bare call just creates the generator object.
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass
from typing import (Dict, FrozenSet, List, Mapping, Optional, Set, Tuple)

from repro.check.callgraph import (
    FileResolver,
    FunctionInfo,
    ProjectIndex,
    build_call_graph,
    build_index,
    collect_function_nodes,
    module_name_for_path,
    strongly_connected_components,
)
from repro.check.cfg import CFG, CFGNode, FuncDef, build_cfg
from repro.check.concurrency import (
    ConcEffects,
    ConcIndex,
    EMPTY_CONC,
    analyze_function,
    build_conc_index,
    collect_prim_attrs,
    conservative_conc,
    optimistic_conc,
)
from repro.check.dataflow import FixpointDiverged, ForwardAnalysis, solve
from repro.check.domains import UNBOUND, Env
from repro.check.rules.asyncstate import (
    ARG,
    ARG_CLOSED,
    ARG_ESCAPED,
    ARG_FINAL,
    ARG_PENDING,
    ARG_WAITED,
    ES_PENDING,
    ES_WAITED,
    FILE_CLOSED,
    VOL_FINAL,
    _apply as _typestate_apply,
    _creation_states,
)
from repro.check.rules.determinism import (
    _GLOBAL_NP_RANDOM_FNS,
    _GLOBAL_RANDOM_FNS,
    _WALL_CLOCK_CALLS,
    _WALL_CLOCK_SUFFIXES,
    dotted_name,
)
from repro.check.rules.units import (
    _UnitsAnalysis,
    _annotation_dim,
    _definite,
    _dims,
)

__all__ = [
    "FileInter",
    "FunctionSummary",
    "InterContext",
    "TAINT_CLOCK",
    "TAINT_RNG",
    "compute_summaries",
    "conservative_summary",
    "taint_states",
]

#: Taint alphabet: concrete sources plus per-parameter pass-through.
TAINT_CLOCK = "clock"
TAINT_RNG = "rng"
PARAM = "param:"  # + parameter index

_ARG_TO_REAL = {
    ARG_WAITED: ES_WAITED,
    ARG_PENDING: ES_PENDING,
    ARG_CLOSED: FILE_CLOSED,
    ARG_FINAL: VOL_FINAL,
}

_TRACKED_PREFIXES = ("es.", "file.", "vol.")


# ---------------------------------------------------------------------------
# Summary record
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class FunctionSummary:
    """What one function does to its arguments / returns to its caller."""

    qualname: str
    params: Tuple[str, ...]
    #: Per-parameter effect token sets (``arg`` family; may-effects are
    #: unions, ``{arg.waited}`` alone means "waited on all paths").
    param_effects: Tuple[FrozenSet[str], ...]
    #: Typestates the return value carries (real-kind alphabet, may
    #: include ``UNBOUND`` for "untracked on some path"); ``None`` means
    #: nothing known.
    return_states: Optional[FrozenSet[str]]
    #: The return value may alias a parameter (``return es``); callers
    #: must not track it as a fresh object.
    return_from_param: bool
    #: Definite dimension of the return value (``bytes``/``seconds``/
    #: ``rate``) or ``None``.
    return_dim: Optional[str]
    #: Determinism taint of the return value: ``clock``/``rng`` plus
    #: ``param:<i>`` pass-through tokens.
    return_taint: FrozenSet[str]
    #: Concurrency effect set (lock/wait/trigger ops, acquisition
    #: pairs, spawned-task writes) for the ``--concurrency`` tier.
    conc: ConcEffects = EMPTY_CONC

    def to_dict(self) -> Dict[str, object]:
        return {
            "qualname": self.qualname,
            "params": list(self.params),
            "param_effects": [sorted(e) for e in self.param_effects],
            "return_states": (sorted(self.return_states)
                              if self.return_states is not None else None),
            "return_from_param": self.return_from_param,
            "return_dim": self.return_dim,
            "return_taint": sorted(self.return_taint),
            "conc": self.conc.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "FunctionSummary":
        states = data["return_states"]
        conc_data = data.get("conc")
        return cls(
            qualname=str(data["qualname"]),
            params=tuple(data["params"]),  # type: ignore[arg-type]
            param_effects=tuple(
                frozenset(e)  # type: ignore[arg-type]
                for e in data["param_effects"]),  # type: ignore[union-attr]
            return_states=(frozenset(states)  # type: ignore[arg-type]
                           if states is not None else None),
            return_from_param=bool(data["return_from_param"]),
            return_dim=(str(data["return_dim"])
                        if data["return_dim"] is not None else None),
            return_taint=frozenset(
                data["return_taint"]),  # type: ignore[arg-type]
            conc=(ConcEffects.from_dict(conc_data)  # type: ignore[arg-type]
                  if conc_data is not None else EMPTY_CONC),
        )

    @property
    def digest(self) -> str:
        """Stable content hash (cache keys, invalidation).  Concurrency
        effects enter site-free so a pure line shift in a callee does
        not re-key (and re-lint) every caller."""
        data = self.to_dict()
        data["conc"] = self.conc.to_dict(sites=False)
        blob = json.dumps(data, sort_keys=True,
                          separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def conservative_summary(info: FunctionInfo) -> FunctionSummary:
    """The escape hedge as a summary: every parameter escapes."""
    return FunctionSummary(
        qualname=info.qualname, params=info.params,
        param_effects=tuple(frozenset({ARG_ESCAPED}) for _ in info.params),
        return_states=None, return_from_param=False,
        return_dim=None, return_taint=frozenset(),
        conc=conservative_conc(info))


def _optimistic_summary(info: FunctionInfo) -> FunctionSummary:
    """Fixpoint seed inside recursive SCCs: assume no effects."""
    return FunctionSummary(
        qualname=info.qualname, params=info.params,
        param_effects=tuple(frozenset({ARG}) for _ in info.params),
        return_states=None, return_from_param=False,
        return_dim=None, return_taint=frozenset(),
        conc=optimistic_conc(info))


# ---------------------------------------------------------------------------
# Determinism taint
# ---------------------------------------------------------------------------

_RNG_GLOBAL_CALLS = (
    {f"random.{fn}" for fn in _GLOBAL_RANDOM_FNS}
    | {f"np.random.{fn}" for fn in _GLOBAL_NP_RANDOM_FNS}
    | {f"numpy.random.{fn}" for fn in _GLOBAL_NP_RANDOM_FNS}
)
_CLOCK_SUFFIXES = tuple("." + s for s in _WALL_CLOCK_SUFFIXES)


def _call_source_taint(call: ast.Call) -> FrozenSet[str]:
    """Taint introduced directly by one call (RC101/RC102 tables)."""
    name = dotted_name(call.func)
    if name is None:
        return frozenset()
    out: Set[str] = set()
    if (name in _WALL_CLOCK_CALLS or name.startswith("secrets.")
            or name in _WALL_CLOCK_SUFFIXES
            or name.endswith(_CLOCK_SUFFIXES)):
        out.add(TAINT_CLOCK)
    if name in _RNG_GLOBAL_CALLS:
        out.add(TAINT_RNG)
    elif name == "random.Random" and not call.args:
        out.add(TAINT_RNG)
    elif name in ("np.random.default_rng", "numpy.random.default_rng") \
            and not call.args:
        out.add(TAINT_RNG)
    return frozenset(out)


def _sub_exprs(node: ast.AST) -> List[ast.expr]:
    """Immediate child expressions, looking through non-expr wrappers
    (keywords, comprehension clauses, slices)."""
    out: List[ast.expr] = []
    for child in ast.iter_child_nodes(node):
        if isinstance(child, ast.expr):
            out.append(child)
        else:
            out.extend(_sub_exprs(child))
    return out


def _expr_taint(expr: ast.expr, env: Env,
                inter: Optional["FileInter"]) -> FrozenSet[str]:
    """Taint tokens ``expr`` may carry under ``env``."""
    if isinstance(expr, ast.Name):
        return (env.get(expr.id) or frozenset()) - {UNBOUND}
    if isinstance(expr, (ast.Lambda, ast.Constant)):
        return frozenset()
    if isinstance(expr, ast.Call):
        out: Set[str] = set(_call_source_taint(expr))
        summary = inter.summary_for_call(expr) if inter is not None else None
        if summary is not None:
            mapping = inter.param_index_map(expr)  # type: ignore[union-attr]
            for token in summary.return_taint:
                if token.startswith(PARAM):
                    idx = int(token[len(PARAM):])
                    if mapping is not None and idx in mapping:
                        out |= _expr_taint(mapping[idx], env, inter)
                    else:
                        for sub in _sub_exprs(expr):
                            out |= _expr_taint(sub, env, inter)
                else:
                    out.add(token)
        else:
            # Unresolved call: taint flows through arbitrarily.
            for sub in _sub_exprs(expr):
                out |= _expr_taint(sub, env, inter)
        return frozenset(out)
    result: FrozenSet[str] = frozenset()
    for sub in _sub_exprs(expr):
        result |= _expr_taint(sub, env, inter)
    return result


def _taint_apply(node: CFGNode, env: Env,
                 inter: Optional["FileInter"]) -> Env:
    """Forward taint transfer for one CFG node."""
    stmt = node.ast_node
    if stmt is None:
        return env
    out = env

    def bind(target: ast.expr, taint: FrozenSet[str]) -> None:
        nonlocal out
        if isinstance(target, ast.Name):
            if taint:
                out = out.set(target.id, taint)
            else:
                out = out.remove(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                bind(element, taint)

    if isinstance(stmt, (ast.Assign, ast.AnnAssign)) \
            and stmt.value is not None:
        taint = _expr_taint(stmt.value, env, inter)
        targets = stmt.targets if isinstance(stmt, ast.Assign) \
            else [stmt.target]
        for target in targets:
            bind(target, taint)
    elif isinstance(stmt, ast.AugAssign):
        taint = _expr_taint(stmt.value, env, inter)
        if isinstance(stmt.target, ast.Name):
            existing = (env.get(stmt.target.id) or frozenset()) - {UNBOUND}
            bind(stmt.target, existing | taint)
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        bind(stmt.target, _expr_taint(stmt.iter, env, inter))
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if item.optional_vars is not None:
                bind(item.optional_vars,
                     _expr_taint(item.context_expr, env, inter))
    elif isinstance(stmt, ast.Delete):
        for target in stmt.targets:
            if isinstance(target, ast.Name):
                out = out.remove(target.id)
    elif isinstance(stmt, ast.excepthandler) and stmt.name:
        out = out.remove(stmt.name)
    return out


class _TaintAnalysis(ForwardAnalysis):
    """Parameters seeded ``param:<i>`` so pass-through is visible."""

    def __init__(self, inter: Optional["FileInter"]) -> None:
        self.inter = inter

    def initial(self, cfg: CFG) -> Env:
        env = Env()
        args = cfg.func.args
        named = args.posonlyargs + args.args + args.kwonlyargs
        for i, arg in enumerate(named):
            env = env.set(arg.arg, frozenset({f"{PARAM}{i}"}))
        return env

    def transfer(self, cfg: CFG, node: CFGNode, env: Env) -> Env:
        return _taint_apply(node, env, self.inter)


def taint_states(cfg: CFG,
                 inter: Optional["FileInter"]) -> Dict[int, Env]:
    """Solve (and memoize) the taint analysis for one function."""
    cached = getattr(cfg, "_taint", None)
    if cached is not None:
        return cached  # type: ignore[no-any-return]
    in_states = solve(cfg, _TaintAnalysis(inter))
    cfg._taint = in_states  # type: ignore[attr-defined]
    return in_states


# ---------------------------------------------------------------------------
# Typestate / units abstraction
# ---------------------------------------------------------------------------

class _SummaryTypestate(ForwardAnalysis):
    """The asyncstate transfer with parameters seeded to ``arg``."""

    def __init__(self, inter: Optional["FileInter"]) -> None:
        self.inter = inter

    def initial(self, cfg: CFG) -> Env:
        env = Env()
        args = cfg.func.args
        named = args.posonlyargs + args.args + args.kwonlyargs
        for arg in named:
            env = env.set(arg.arg, frozenset({ARG}))
        return env

    def transfer(self, cfg: CFG, node: CFGNode, env: Env) -> Env:
        return _typestate_apply(node, env, report=None, inter=self.inter)


def _abstract_param(states: Optional[FrozenSet[str]]) -> FrozenSet[str]:
    """Exit-state of one parameter -> effect token set."""
    if states is None:
        # Rebound/deleted on every path after a possible escape; the
        # history is gone, so stay conservative.
        return frozenset({ARG_ESCAPED})
    out: Set[str] = set()
    for s in states:
        if s == ARG or s.startswith("arg."):
            out.add(s)
        elif s == UNBOUND:
            out.add(ARG_ESCAPED)  # rebound on some path: history lost
        else:
            out.add(ARG_ESCAPED)  # real-kind/escaped: unknown provenance
    return frozenset(out) if out else frozenset({ARG_ESCAPED})


def _return_value_states(
        value: Optional[ast.expr], env: Env,
        inter: Optional["FileInter"]
) -> Tuple[Optional[FrozenSet[str]], bool]:
    """``(states, from_param)`` one return expression contributes."""
    if value is None:
        return None, False
    driven = isinstance(value, (ast.Await, ast.YieldFrom))
    inner = value.value if driven else value
    if isinstance(inner, ast.Name):
        states = env.get(inner.id)
        if not states:
            return None, False
        out: Set[str] = set()
        from_param = False
        for s in states:
            if s in _ARG_TO_REAL:
                out.add(_ARG_TO_REAL[s])
                from_param = True
            elif s == ARG:
                from_param = True
            elif s == UNBOUND:
                out.add(UNBOUND)
            elif s.startswith(_TRACKED_PREFIXES):
                out.add(s)
            else:
                return None, False  # escaped / result states: opaque
        if out - {UNBOUND}:
            return frozenset(out), from_param
        return None, from_param
    created = _creation_states(value)
    if created is not None:
        return created, False
    if isinstance(inner, ast.Call) and inter is not None:
        states = inter.return_states_for_call(inner, driven=driven)
        if states is not None:
            # Transitive: the callee's own from_param already collapsed
            # its states to None, so reaching here means a fresh object.
            return states, False
    return None, False


def _abstract_returns(
        cfg: CFG, in_states: Dict[int, Env],
        inter: Optional["FileInter"]
) -> Tuple[Optional[FrozenSet[str]], bool]:
    """Join of every return site, ``UNBOUND`` for untracked paths."""
    rets: Set[str] = set()
    from_param = False
    for node in cfg.stmt_nodes():
        stmt = node.ast_node
        if not isinstance(stmt, ast.Return):
            continue
        env = in_states.get(node.index)
        if env is None:
            continue  # unreachable
        states, via_param = _return_value_states(stmt.value, env, inter)
        from_param = from_param or via_param
        if states is None:
            rets.add(UNBOUND)
        else:
            rets.update(states)
    exit_node = cfg.nodes[cfg.exit]
    for pred in exit_node.preds:
        pred_stmt = cfg.nodes[pred].ast_node
        if isinstance(pred_stmt, (ast.Return, ast.Raise)):
            continue
        # Implicit ``return None`` fall-through (or a finally clone on
        # the return path, indistinguishable here): value may be
        # untracked.
        rets.add(UNBOUND)
        break
    if not rets - {UNBOUND}:
        return None, from_param
    return frozenset(rets), from_param


def _return_dim(func: FuncDef, cfg: CFG,
                inter: Optional["FileInter"]) -> Optional[str]:
    """Definite dimension of every return value, if they agree."""
    annotated = _annotation_dim(func.returns)
    if annotated is not None:
        return annotated
    try:
        in_states = solve(cfg, _UnitsAnalysis(cfg, inter))
    except FixpointDiverged:
        return None
    dims: Set[str] = set()
    saw_return = False
    for node in cfg.stmt_nodes():
        stmt = node.ast_node
        if not isinstance(stmt, ast.Return):
            continue
        env = in_states.get(node.index)
        if env is None:
            continue
        saw_return = True
        if stmt.value is None:
            return None
        definite = _definite(_dims(stmt.value, env, inter))
        if definite is None:
            return None
        dims.add(definite)
    if not saw_return:
        return None
    exit_node = cfg.nodes[cfg.exit]
    for pred in exit_node.preds:
        pred_stmt = cfg.nodes[pred].ast_node
        if not isinstance(pred_stmt, (ast.Return, ast.Raise)):
            return None  # implicit None fall-through
    if len(dims) == 1:
        return next(iter(dims))
    return None


def _return_taint(cfg: CFG,
                  inter: Optional["FileInter"]) -> FrozenSet[str]:
    """Union of the taint of every returned expression."""
    try:
        in_states = solve(cfg, _TaintAnalysis(inter))
    except FixpointDiverged:
        return frozenset()
    out: Set[str] = set()
    for node in cfg.stmt_nodes():
        stmt = node.ast_node
        if not isinstance(stmt, ast.Return) or stmt.value is None:
            continue
        env = in_states.get(node.index)
        if env is not None:
            out |= _expr_taint(stmt.value, env, inter)
    return frozenset(out)


def summarize_function(info: FunctionInfo, func: FuncDef,
                       view: Optional["FileInter"]) -> FunctionSummary:
    """One summary from three solves over a fresh CFG."""
    cfg = build_cfg(func)
    try:
        ts_in = solve(cfg, _SummaryTypestate(view))
    except FixpointDiverged:
        return conservative_summary(info)
    exit_env = ts_in.get(cfg.exit)
    if exit_env is None:
        # Exit unreachable (infinite loop): callers never resume, so
        # "no effect" is vacuously accurate.
        param_effects: Tuple[FrozenSet[str], ...] = tuple(
            frozenset({ARG}) for _ in info.params)
        return_states: Optional[FrozenSet[str]] = None
        from_param = False
    else:
        param_effects = tuple(
            _abstract_param(exit_env.get(p)) for p in info.params)
        return_states, from_param = _abstract_returns(cfg, ts_in, view)
    return FunctionSummary(
        qualname=info.qualname, params=info.params,
        param_effects=param_effects,
        return_states=return_states, return_from_param=from_param,
        return_dim=_return_dim(func, cfg, view),
        return_taint=_return_taint(cfg, view),
        conc=(analyze_function(info, func, view)
              if view is not None else conservative_conc(info)))


# ---------------------------------------------------------------------------
# Per-file view and project context
# ---------------------------------------------------------------------------

class FileInter:
    """One file's interprocedural view: ``ast.Call`` (by identity) to
    callee resolution, summaries and argument->parameter mapping.

    Must be constructed over the *same* tree object the rules walk —
    the resolver's maps are keyed by ``id(node)``.
    """

    def __init__(self, index: ProjectIndex,
                 summaries: Dict[str, FunctionSummary],
                 resolver: FileResolver,
                 ctx: Optional["InterContext"] = None) -> None:
        self.index = index
        self.summaries = summaries
        self.resolver = resolver
        self._ctx = ctx

    @property
    def prim_attrs(self) -> Dict[str, str]:
        """Project-wide ``"<class>.<attr>" -> kind`` primitive map."""
        return self._ctx.prim_attrs if self._ctx is not None else {}

    @property
    def conc(self) -> Optional["ConcIndex"]:
        """Whole-project concurrency verdicts, when assembled."""
        return self._ctx.conc if self._ctx is not None else None

    def resolve(self, call: ast.Call) -> Optional[str]:
        """Callee qualname, or ``None`` for opaque calls."""
        return self.resolver.calls.get(id(call))

    def function_for_call(self, call: ast.Call) -> Optional[FunctionInfo]:
        qual = self.resolve(call)
        return self.index.functions.get(qual) if qual is not None else None

    def summary_for_call(self, call: ast.Call) -> Optional[FunctionSummary]:
        qual = self.resolve(call)
        return self.summaries.get(qual) if qual is not None else None

    def param_index_map(self,
                        call: ast.Call) -> Optional[Dict[int, ast.expr]]:
        """Parameter index -> argument expression, or ``None`` when the
        mapping cannot be established (``*args`` spread, ``**kw``,
        unknown keyword, arity mismatch)."""
        qual = self.resolve(call)
        if qual is None:
            return None
        info = self.index.functions.get(qual)
        if info is None:
            return None
        receiver = self.resolver.receivers.get(id(call), "plain")
        mapping: Dict[int, ast.expr] = {}
        offset = 0
        if info.kind == "method":
            if receiver == "instance":
                if isinstance(call.func, ast.Attribute):
                    mapping[0] = call.func.value
                offset = 1
        elif info.kind == "classmethod":
            offset = 1  # ``cls`` is bound either way; no expression maps
        index = offset
        for arg in call.args:
            if isinstance(arg, ast.Starred):
                return None
            if index < len(info.params):
                mapping[index] = arg
            elif not info.has_vararg:
                return None
            index += 1
        for kw in call.keywords:
            if kw.arg is None:
                return None  # ``**kwargs`` spread
            if kw.arg in info.params:
                mapping[info.params.index(kw.arg)] = kw.value
            elif not info.has_kwarg:
                return None
        return mapping

    def call_effects(
            self, call: ast.Call, driven: bool = False
    ) -> Optional[List[Tuple[ast.expr, FrozenSet[str]]]]:
        """``(argument expression, effect token set)`` per argument of a
        resolved call, receiver included; ``None`` falls back to the
        escape hedge.  Arguments that map to no parameter (``*args``
        overflow) escape."""
        qual = self.resolve(call)
        if qual is None:
            return None
        info = self.index.functions.get(qual)
        summary = self.summaries.get(qual)
        if info is None or summary is None:
            return None
        if info.deferred and not driven:
            return None  # bare call only creates the generator/coroutine
        mapping = self.param_index_map(call)
        if mapping is None:
            return None
        index_of_expr = {id(expr): idx for idx, expr in mapping.items()}
        exprs: List[ast.expr] = []
        if 0 in mapping and isinstance(call.func, ast.Attribute) \
                and mapping[0] is call.func.value:
            exprs.append(call.func.value)
        exprs.extend(a for a in call.args)
        exprs.extend(kw.value for kw in call.keywords)
        pairs: List[Tuple[ast.expr, FrozenSet[str]]] = []
        for expr in exprs:
            idx = index_of_expr.get(id(expr))
            if idx is not None and idx < len(summary.param_effects):
                pairs.append((expr, summary.param_effects[idx]))
            else:
                pairs.append((expr, frozenset({ARG_ESCAPED})))
        return pairs

    def return_states_for_call(
            self, call: ast.Call,
            driven: bool = False) -> Optional[FrozenSet[str]]:
        """Typestates the call's value carries into the caller."""
        qual = self.resolve(call)
        if qual is None:
            return None
        info = self.index.functions.get(qual)
        summary = self.summaries.get(qual)
        if info is None or summary is None:
            return None
        if info.deferred and not driven:
            return None
        if summary.return_from_param:
            # The value may alias an argument the caller already
            # tracks; binding it fresh would double-count the object.
            return None
        return summary.return_states

    def return_dim_for_call(self, call: ast.Call) -> Optional[str]:
        """Definite dimension of the call's value, if summarized."""
        qual = self.resolve(call)
        if qual is None:
            return None
        info = self.index.functions.get(qual)
        summary = self.summaries.get(qual)
        if info is None or summary is None or info.deferred:
            return None
        return summary.return_dim

    def callee_in_sim(self, qual: str) -> bool:
        """Whether ``qual`` is defined in a determinism-critical path."""
        from repro.check.rules import SIM_PATHS
        info = self.index.functions.get(qual)
        return info is not None and any(
            fragment in info.path for fragment in SIM_PATHS)


class InterContext:
    """Whole-project interprocedural state: index, call graph, summaries.

    Plain-data members (``index``, ``summaries``) are picklable and
    shared with worker processes; per-file views are rebuilt wherever
    the lint actually runs.
    """

    def __init__(self, index: ProjectIndex,
                 trees: Dict[str, ast.Module]) -> None:
        self.index = index
        self.trees = trees
        self.summaries: Dict[str, FunctionSummary] = {}
        self.edges: Dict[str, Set[str]] = {}
        self.nodes: Dict[str, FuncDef] = {}
        self.prim_attrs: Dict[str, str] = collect_prim_attrs(trees)
        #: Assembled by :meth:`build` (or the driver) once summaries
        #: exist; ``None`` until then.
        self.conc: Optional[ConcIndex] = None
        self._own_views: Dict[str, FileInter] = {}
        for path in sorted(trees):
            self.nodes.update(
                collect_function_nodes(trees[path],
                                       module_name_for_path(path)))

    @classmethod
    def build(cls, sources: Mapping[str, str]) -> "InterContext":
        """Parse, index and summarize a ``{path: source}`` project."""
        trees: Dict[str, ast.Module] = {}
        for path in sorted(sources):
            try:
                trees[path] = ast.parse(sources[path])
            except SyntaxError:
                continue  # RC000 reports it at lint time
        index = build_index(trees)
        ctx = cls(index, trees)
        ctx.edges = build_call_graph(index, trees)
        compute_summaries(ctx)
        ctx.conc = build_conc_index(ctx.summaries, ctx.index.functions)
        return ctx

    def own_view(self, path: str) -> FileInter:
        """View over the context's own parse of ``path``."""
        if path not in self._own_views:
            resolver = FileResolver(self.index, path, self.trees[path])
            self._own_views[path] = FileInter(self.index, self.summaries,
                                              resolver, ctx=self)
        return self._own_views[path]

    def file_view(self, path: str, tree: ast.Module) -> FileInter:
        """View bound to a caller-supplied tree (the one rules walk)."""
        return FileInter(self.index, self.summaries,
                         FileResolver(self.index, path, tree), ctx=self)


def compute_summaries(ctx: InterContext,
                      only: Optional[Set[str]] = None) -> None:
    """Fill ``ctx.summaries`` bottom-up over the SCC condensation.

    With ``only``, components disjoint from it are skipped — their
    summaries must already be present (loaded from the cache).
    """

    def summarize(qual: str) -> FunctionSummary:
        info = ctx.index.functions[qual]
        func = ctx.nodes.get(qual)
        if func is None:
            return conservative_summary(info)
        return summarize_function(info, func, ctx.own_view(info.path))

    for component in strongly_connected_components(ctx.edges):
        members = sorted(q for q in component if q in ctx.index.functions)
        if not members:
            continue
        if only is not None and not any(q in only for q in members):
            continue
        recursive = len(members) > 1 or any(
            members[0] in ctx.edges.get(members[0], ()) for _ in (0,))
        if not recursive:
            ctx.summaries[members[0]] = summarize(members[0])
            continue
        for qual in members:
            ctx.summaries[qual] = _optimistic_summary(
                ctx.index.functions[qual])
        budget = 4 + 2 * len(members)
        converged = False
        for _ in range(budget):
            changed = False
            for qual in members:
                new = summarize(qual)
                if new != ctx.summaries[qual]:
                    ctx.summaries[qual] = new
                    changed = True
            if not changed:
                converged = True
                break
        if not converged:
            for qual in members:
                ctx.summaries[qual] = conservative_summary(
                    ctx.index.functions[qual])
