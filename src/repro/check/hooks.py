"""Instrumentation seam between the simulator and the runtime checker.

This module is deliberately import-free (stdlib or otherwise) so that
the hot simulator modules (:mod:`repro.sim.engine`,
:mod:`repro.sim.primitives`, :mod:`repro.hdf5.async_vol`) can import it
without any risk of an import cycle, and so that the *disabled* cost of
every instrumentation point is a single module-attribute load plus an
``is None`` test.

``checker`` is ``None`` unless a
:class:`repro.check.runtime.RuntimeChecker` is installed (opt-in; see
``RuntimeChecker.installed()``).  Instrumented sites follow the
pattern::

    ck = _hooks.checker
    if ck is not None:
        ck.on_release(self)

The checker must never mutate simulation state or schedule callbacks:
with a checker installed the event schedule — and therefore every
emitted trace — stays byte-for-byte identical to an uninstrumented run.
"""

from __future__ import annotations

#: The installed runtime checker, or ``None`` (the default: all
#: instrumentation points are no-ops).
checker = None
