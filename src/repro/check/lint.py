"""AST-based static analyzer enforcing the repo's invariants.

Every finding carries a stable rule ID, the offending location and a
fix hint.  Violations can be suppressed — with a written justification
— by a comment on the offending line or on a comment-only line
directly above it::

    t0 = time.time()  # repro-check: disable=RC101 (host-side harness timing)

A suppression without a justification does not suppress anything and
is itself reported (RC001); an unknown rule ID in a suppression is
reported too (RC002), so stale directives cannot rot silently.  A valid
directive whose rule *ran* but produced nothing on the covered lines is
orphaned and reported as RC003 — suppressions must die with the finding
they silenced.  Rules whose tier did not run (flow rules without
``--flow``, inter rules without ``--inter``) are not audited, since
"no finding" proves nothing there.
"""

from __future__ import annotations

import ast
import hashlib
import json
import pathlib
import re
from dataclasses import dataclass, replace
from typing import (Dict, Iterable, List, Optional, Sequence, Set, Tuple,
                    Union)

from repro.check.rules import RULES, LintContext

__all__ = ["Finding", "findings_to_json", "findings_to_sarif",
           "lint_paths", "lint_source", "render_findings",
           "suppression_stats"]


@dataclass(frozen=True)
class Finding:
    """One rule violation at one location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    hint: str
    #: Stable identity for baselines: sha256 of rule + path + the
    #: stripped source line + an occurrence counter — line-number-free,
    #: so unrelated edits above do not re-key it.
    fingerprint: str = ""

    def format(self) -> str:
        """``path:line:col: RCxyz message (hint: ...)``."""
        return (f"{self.path}:{self.line}:{self.col}: {self.rule_id} "
                f"{self.message} (hint: {self.hint})")


def _with_fingerprints(findings: List[Finding],
                       lines: Sequence[str]) -> List[Finding]:
    """Stamp stable fingerprints onto one file's (sorted) findings."""
    counts: Dict[Tuple[str, str], int] = {}
    out: List[Finding] = []
    for f in findings:
        context = (lines[f.line - 1].strip()
                   if 0 < f.line <= len(lines) else "")
        occurrence = counts.get((f.rule_id, context), 0)
        counts[(f.rule_id, context)] = occurrence + 1
        blob = "\x1f".join((f.rule_id, f.path, context, str(occurrence)))
        out.append(replace(f, fingerprint=hashlib.sha256(
            blob.encode("utf-8")).hexdigest()[:20]))
    return out


_SUPPRESS_RE = re.compile(
    r"#\s*repro-check:\s*disable=([A-Za-z0-9_,\s]+?)\s*(?:\((.*)\))?\s*$"
)

_META_HINTS = {
    "RC000": "fix the syntax error; unparseable files cannot be checked",
    "RC001": "add a justification: "
             "# repro-check: disable=RCxyz (why this is safe here)",
    "RC002": "use a registered rule ID (see 'repro check --list-rules')",
    "RC003": "the suppressed rule no longer fires here; delete the "
             "stale directive",
}


@dataclass(frozen=True)
class _Directive:
    """One parsed ``repro-check: disable=`` comment."""

    line: int
    col: int
    rule_ids: tuple[str, ...]
    reason: str

    @property
    def valid(self) -> bool:
        return bool(self.reason.strip())


def _string_spans(tree: ast.Module) -> List[Tuple[int, int, int, int]]:
    """(start line, start col, end line, end col) of every *multi-line*
    string constant — directive-looking text inside one is data, not a
    directive.  Single-line strings cannot match ``_SUPPRESS_RE`` (the
    closing quote breaks its end-of-line anchor), so they are skipped.
    """
    spans: List[Tuple[int, int, int, int]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            end_line = node.end_lineno or node.lineno
            if end_line > node.lineno:
                spans.append((node.lineno, node.col_offset, end_line,
                              node.end_col_offset or 0))
    return spans


def _in_string(spans: List[Tuple[int, int, int, int]], line: int,
               col: int) -> bool:
    for start_line, start_col, end_line, end_col in spans:
        if start_line < line < end_line:
            return True
        if line == start_line and line < end_line and col > start_col:
            return True
        if start_line < line and line == end_line and col < end_col:
            return True
    return False


def _parse_directives(path: str, lines: Sequence[str],
                      tree: Optional[ast.Module] = None
                      ) -> tuple[list[_Directive], list[Finding]]:
    """Extract suppression directives and the meta-findings they earn."""
    directives: list[_Directive] = []
    meta: list[Finding] = []
    spans = _string_spans(tree) if tree is not None else []
    for lineno, text in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        if _in_string(spans, lineno, match.start()):
            continue
        rule_ids = tuple(
            part.strip() for part in match.group(1).split(",") if part.strip()
        )
        directive = _Directive(
            line=lineno, col=match.start(), rule_ids=rule_ids,
            reason=match.group(2) or "",
        )
        directives.append(directive)
        if not directive.valid:
            meta.append(Finding(
                path, lineno, directive.col, "RC001",
                "suppression without a justification (it suppresses "
                "nothing)", _META_HINTS["RC001"],
            ))
        for rule_id in rule_ids:
            if rule_id not in RULES:
                meta.append(Finding(
                    path, lineno, directive.col, "RC002",
                    f"suppression names unknown rule {rule_id!r}",
                    _META_HINTS["RC002"],
                ))
    return directives, meta


def _covers(directive: _Directive, lines: Sequence[str],
            line: int) -> bool:
    """Whether ``directive`` covers findings on ``line`` — same line,
    or a comment-only line directly above it."""
    if directive.line == line:
        return True
    if directive.line == line - 1:
        above = lines[directive.line - 1].strip()
        if above.startswith("#"):
            return True
    return False


def _suppressed_at(directives: list[_Directive], lines: Sequence[str],
                   rule_id: str, line: int) -> bool:
    """Whether a *valid* directive covers ``rule_id`` on ``line``."""
    return any(
        directive.valid and rule_id in directive.rule_ids
        and _covers(directive, lines, line)
        for directive in directives
    )


def _orphaned_suppressions(path: str, directives: list[_Directive],
                           lines: Sequence[str],
                           raw: List[Tuple[str, int]],
                           executed: Set[str]) -> list[Finding]:
    """RC003 for every valid directive whose rule ran but hit nothing."""
    out: list[Finding] = []
    for directive in directives:
        if not directive.valid:
            continue
        for rule_id in directive.rule_ids:
            if rule_id not in RULES or rule_id not in executed:
                continue
            hit = any(raw_rule == rule_id and _covers(directive, lines,
                                                      raw_line)
                      for raw_rule, raw_line in raw)
            if not hit:
                out.append(Finding(
                    path, directive.line, directive.col, "RC003",
                    f"orphaned suppression: {rule_id} no longer fires "
                    f"on the covered line", _META_HINTS["RC003"],
                ))
    return out


def lint_source(source: str, path: str = "<string>",
                flow: bool = False,
                inter: Optional[object] = None,
                concurrency: bool = False) -> list[Finding]:
    """Lint one file's source text; ``path`` drives rule scoping.

    ``flow=True`` additionally runs the flow-sensitive tier (RC4xx
    typestate, RC5xx units) — CFG construction plus a fixpoint per
    function, so it costs more than the flat tier and is opt-in.
    ``inter`` (an :class:`~repro.check.summaries.InterContext`) enables
    the interprocedural tier: RC405/RC110/RC111 run and the flow rules
    consult callee summaries instead of the escape hedge.
    ``concurrency=True`` additionally runs the conc tier (RC6xx) —
    it needs ``inter`` whose context carries an assembled
    :class:`~repro.check.concurrency.ConcIndex`.
    """
    path = pathlib.PurePath(path).as_posix()
    lines = source.splitlines()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as err:
        return _with_fingerprints([Finding(
            path, err.lineno or 1, (err.offset or 1) - 1, "RC000",
            f"syntax error: {err.msg}", _META_HINTS["RC000"],
        )], lines)
    directives, findings = _parse_directives(path, lines, tree)
    file_inter = None
    if inter is not None:
        file_inter = inter.file_view(path, tree)  # type: ignore[attr-defined]
    conc_ready = (concurrency and file_inter is not None
                  and getattr(file_inter, "conc", None) is not None)
    ctx = LintContext(path=path, tree=tree, source=source, lines=lines,
                      inter=file_inter)
    raw: List[Tuple[str, int]] = []
    executed: Set[str] = set()
    for rule_id in sorted(RULES):
        rule = RULES[rule_id]
        if rule.tier == "flow" and not flow:
            continue
        if rule.tier == "inter" and file_inter is None:
            continue
        if rule.tier == "conc" and not conc_ready:
            continue
        if not rule.applies(ctx):
            continue
        executed.add(rule.id)
        for line, col, message in rule.check(ctx):
            raw.append((rule.id, line))
            if _suppressed_at(directives, lines, rule.id, line):
                continue
            findings.append(Finding(path, line, col, rule.id, message,
                                    rule.hint))
    findings.extend(
        _orphaned_suppressions(path, directives, lines, raw, executed))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return _with_fingerprints(findings, lines)


def _iter_python_files(paths: Iterable[Union[str, pathlib.Path]]
                       ) -> list[pathlib.Path]:
    files: list[pathlib.Path] = []
    for raw in paths:
        path = pathlib.Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
        else:
            raise FileNotFoundError(f"not a python file or directory: {path}")
    return files


def lint_paths(paths: Iterable[Union[str, pathlib.Path]],
               flow: bool = False, inter: bool = False,
               concurrency: bool = False) -> list[Finding]:
    """Lint every ``*.py`` file under ``paths`` (files or directories).

    ``inter=True`` implies ``flow`` and builds one project-wide
    :class:`~repro.check.summaries.InterContext` over all the files
    first, so the rules see cross-file summaries.
    ``concurrency=True`` implies ``inter`` and additionally runs the
    RC6xx conc tier over the assembled ``ConcIndex``.  (The cached
    parallel variant of this lives in :mod:`repro.check.driver`.)
    """
    files = _iter_python_files(paths)
    texts = {fp: fp.read_text(encoding="utf-8") for fp in files}
    context = None
    if concurrency:
        inter = True
    if inter:
        from repro.check.summaries import InterContext
        flow = True
        context = InterContext.build({
            pathlib.PurePath(str(fp)).as_posix(): text
            for fp, text in texts.items()
        })
    findings: list[Finding] = []
    for file_path in files:
        findings.extend(
            lint_source(texts[file_path], path=str(file_path), flow=flow,
                        inter=context, concurrency=concurrency)
        )
    return findings


def suppression_stats(paths: Iterable[Union[str, pathlib.Path]]
                      ) -> dict:
    """Every suppression directive under ``paths`` (``--stats``)."""
    entries: list[dict] = []
    for file_path in _iter_python_files(paths):
        posix = pathlib.PurePath(str(file_path)).as_posix()
        text = file_path.read_text(encoding="utf-8")
        lines = text.splitlines()
        try:
            tree: Optional[ast.Module] = ast.parse(text, filename=posix)
        except SyntaxError:
            tree = None
        directives, _ = _parse_directives(posix, lines, tree)
        for directive in directives:
            entries.append({
                "path": posix,
                "line": directive.line,
                "rules": list(directive.rule_ids),
                "reason": directive.reason.strip(),
                "valid": directive.valid,
            })
    return {"count": len(entries), "suppressions": entries}


def findings_to_json(findings: Sequence[Finding]) -> str:
    """Machine-readable findings: a stable JSON document for CI."""
    return json.dumps({
        "tool": "repro check",
        "count": len(findings),
        "findings": [
            {
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "rule_id": f.rule_id,
                "message": f.message,
                "hint": f.hint,
                "fingerprint": f.fingerprint,
            }
            for f in findings
        ],
    }, indent=2, sort_keys=False)


def findings_to_sarif(findings: Sequence[Finding]) -> str:
    """SARIF 2.1.0 document (GitHub code-scanning annotations).

    Rule metadata comes from the registry; the meta rules (RC000-RC002)
    are included so suppression-hygiene findings annotate too.
    """
    rule_ids = sorted(set(RULES) | set(_META_HINTS))
    rules = []
    for rule_id in rule_ids:
        rule = RULES.get(rule_id)
        if rule is not None:
            description = rule.title
            help_text = rule.hint
        else:
            description = "repro check meta finding"
            help_text = _META_HINTS[rule_id]
        rules.append({
            "id": rule_id,
            "shortDescription": {"text": description},
            "help": {"text": help_text},
        })
    index = {rule_id: i for i, rule_id in enumerate(rule_ids)}
    results = [
        {
            "ruleId": f.rule_id,
            "ruleIndex": index[f.rule_id],
            "level": "error",
            "message": {"text": f"{f.message} (hint: {f.hint})"},
            "partialFingerprints": {"reproCheck/v1": f.fingerprint},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": f.path,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": f.line,
                        "startColumn": f.col + 1,
                    },
                },
            }],
        }
        for f in findings
    ]
    return json.dumps({
        "$schema": ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json"),
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-check",
                    "informationUri": "https://example.invalid/repro",
                    "rules": rules,
                },
            },
            "results": results,
        }],
    }, indent=2)


def render_findings(findings: Sequence[Finding]) -> str:
    """Human-readable report: one line per finding plus a tally."""
    if not findings:
        return "repro check: no findings"
    out = [f.format() for f in findings]
    by_rule: dict[str, int] = {}
    for finding in findings:
        by_rule[finding.rule_id] = by_rule.get(finding.rule_id, 0) + 1
    tally = ", ".join(f"{rule_id} x{count}"
                      for rule_id, count in sorted(by_rule.items()))
    out.append(f"repro check: {len(findings)} finding"
               f"{'s' if len(findings) != 1 else ''} ({tally})")
    return "\n".join(out)
