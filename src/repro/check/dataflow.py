"""Worklist fixpoint solver for forward dataflow over :mod:`~repro.check.cfg`.

An analysis supplies an initial environment for the function entry and
a *pure* transfer function per CFG node; :func:`solve` iterates to a
fixpoint and returns the environment *reaching* each node (its IN
state).  Termination is guaranteed by the bounded-height domains in
:mod:`repro.check.domains` (per-variable powersets of a finite
alphabet); a generous iteration cap turns any future unbounded domain
into a loud :class:`FixpointDiverged` instead of a hang.

Rules built on this are two-phase: solve first (transfer must not
report), then walk the nodes once and emit findings from the reaching
states — revisits during iteration therefore never duplicate findings.
"""

from __future__ import annotations

from collections import deque
from typing import Dict

from repro.check.cfg import CFG, CFGNode
from repro.check.domains import Env

__all__ = ["FixpointDiverged", "ForwardAnalysis", "solve"]


class FixpointDiverged(RuntimeError):
    """The worklist exceeded its iteration budget (unbounded domain?)."""


class ForwardAnalysis:
    """Base class for forward analyses; subclasses override both hooks."""

    def initial(self, cfg: CFG) -> Env:
        """Environment at the function entry (parameter seeding etc.)."""
        return Env()

    def transfer(self, cfg: CFG, node: CFGNode, env: Env) -> Env:
        """OUT state of ``node`` given its IN state.  Must be pure."""
        raise NotImplementedError


def solve(cfg: CFG, analysis: ForwardAnalysis) -> Dict[int, Env]:
    """IN state per reachable node index (unreachable nodes absent)."""
    in_states: Dict[int, Env] = {cfg.entry: analysis.initial(cfg)}
    worklist: deque[int] = deque([cfg.entry])
    queued = {cfg.entry}
    # Height of the lattice is O(vars x |alphabet|); every pop either
    # grows some IN state or leaves the graph untouched, so this cap is
    # far above any converging run.
    budget = max(2048, len(cfg.nodes) * 256)
    steps = 0
    while worklist:
        steps += 1
        if steps > budget:
            raise FixpointDiverged(
                f"fixpoint exceeded {budget} steps on CFG with "
                f"{len(cfg.nodes)} nodes")
        index = worklist.popleft()
        queued.discard(index)
        node = cfg.nodes[index]
        out = analysis.transfer(cfg, node, in_states[index])
        for succ in node.succs:
            if succ in in_states:
                merged = in_states[succ].join(out)
            else:
                merged = out
            if succ not in in_states or merged != in_states[succ]:
                in_states[succ] = merged
                if succ not in queued:
                    worklist.append(succ)
                    queued.add(succ)
    return in_states
