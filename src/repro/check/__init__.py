"""``repro.check`` — machine-checked repo invariants.

Two halves (see ``docs/architecture.md``, "Static analysis & runtime
checking"):

- :mod:`repro.check.lint` — an AST-based static analyzer enforcing the
  determinism and error-discipline invariants the byte-identical figure
  gates rest on (no wall-clock or unseeded entropy in sim paths, typed
  errors, no bare excepts, no float ``==`` on simulated time, ...).
  Every rule carries an ID and a fix hint; suppressions require a
  written justification.
- :mod:`repro.check.runtime` — an opt-in runtime checker for the
  simulator: a vector-clock happens-before detector for unsynchronized
  shared-state access across simulated processes, plus a resource-leak
  auditor (unreleased ``Reservation``s, un-drained ``EventSet``s,
  un-awaited failed ``SimEvent``s, processes parked forever).

Both are wired into the ``repro check`` CLI subcommand and the CI
``static-analysis`` job.

Import discipline: this package is imported by the hot simulator
modules (through :mod:`repro.check.hooks`), so its eager imports are
stdlib-only.  :class:`RuntimeChecker` — which imports the engine — is
re-exported lazily.
"""

from __future__ import annotations

from typing import Any

from repro.check.lint import (
    Finding,
    findings_to_json,
    findings_to_sarif,
    lint_paths,
    lint_source,
    render_findings,
    suppression_stats,
)
from repro.check.rules import RULES, all_rules

__all__ = [
    "CheckResult",
    "ConcEffects",
    "ConcIndex",
    "Finding",
    "InterContext",
    "RULES",
    "RuntimeChecker",
    "RuntimeFinding",
    "all_rules",
    "build_conc_index",
    "check_paths",
    "findings_to_json",
    "findings_to_sarif",
    "lint_paths",
    "lint_source",
    "render_findings",
    "suppression_stats",
]

#: Lazily-imported names -> their defining submodule (PEP 562).  Eagerly
#: importing :mod:`repro.check.runtime` here would close an import cycle
#: through :mod:`repro.sim.engine`; the interprocedural driver pulls in
#: the whole summary machinery, which light consumers never need.
_LAZY = {
    "RuntimeChecker": "runtime",
    "RuntimeFinding": "runtime",
    "CheckResult": "driver",
    "check_paths": "driver",
    "InterContext": "summaries",
    "ConcEffects": "concurrency",
    "ConcIndex": "concurrency",
    "build_conc_index": "concurrency",
}


def __getattr__(name: str) -> Any:
    if name in _LAZY:
        import importlib

        module = importlib.import_module(f"repro.check.{_LAZY[name]}")
        return getattr(module, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
