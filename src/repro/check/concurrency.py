"""Interprocedural concurrency analysis for ``repro check --concurrency``.

The runtime tier can only observe concurrency bugs on executed paths:
RT101 races and RT201 reservation leaks are sampled, never proven
absent, and a static deadlock simply hangs the engine.  This module
proves the acquire/wait/trigger discipline of the paper's async-VOL
protocol (SIII-B) *statically*, across function boundaries, using the
PR 9 summary machinery:

- every function gets a :class:`ConcEffects` record (carried on its
  :class:`~repro.check.summaries.FunctionSummary`): the lock/wait/
  trigger operations it performs on *tokens* — named sim primitives —
  directly or through resolved callees, the acquisition-order pairs it
  creates, what it does to primitive-typed parameters, and the
  constant-region dataset writes of the processes it spawns;
- :func:`build_conc_index` assembles the per-function effects into a
  global acquisition-order graph plus wait/trigger matching and
  pre-computes the RC601-RC604 findings that the rule classes in
  :mod:`repro.check.rules.concurrency` then filter per file.

Token grammar
-------------

``C:<class qualname>.<attr>``
    A primitive stored on ``self`` (``self._sem = Semaphore(...)``
    anywhere in the class body); shared by every method of the class,
    so acquisition edges compose across methods.
``L:<function qualname>:<name>``
    A single-assignment local bound by a recognized constructor
    (``q = Queue(engine)``, ``ev = engine.event(...)``,
    ``res = yield buf.reserve(n)``).
``param:<i>``
    A parameter, relative to its function; callers substitute their
    own tokens through the argument->parameter mapping, which is how a
    trigger (or an acquisition) inside a callee resolves against the
    caller's object.

Zero-false-positive hedge: any token that is aliased, returned, stored
into a container/attribute, passed to an unresolved call or captured
by a nested function is *escaped* — it still contributes ordering
edges already recorded, but RC602/RC604 never report it.  This is the
same trade the flow tier makes and is what keeps the repo-wide
zero-findings gate honest.
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass, field
from typing import (Dict, FrozenSet, Iterator, List, Mapping, Optional,
                    Sequence, Set, Tuple)

from repro.check.callgraph import (
    FunctionInfo,
    strongly_connected_components,
)
from repro.check.cfg import CFG, CFGNode, FuncDef, build_cfg
from repro.check.dataflow import FixpointDiverged, ForwardAnalysis, solve
from repro.check.domains import UNBOUND, Env
from repro.check.rules._flowutil import captured_names, dotted, header_exprs

__all__ = [
    "ConcEffects",
    "ConcIndex",
    "EMPTY_CONC",
    "analyze_function",
    "build_conc_index",
    "collect_prim_attrs",
    "conservative_conc",
    "display_token",
]

# -- abstract lock states ----------------------------------------------------
HELD, FREE = "held", "free"

# -- operation classes -------------------------------------------------------
ACQUIRE, RELEASE, WAIT, TRIGGER = "acquire", "release", "wait", "trigger"

#: Constructor tail name -> primitive kind (the asyncstate
#: ``_creation_states`` precedent: resolution by tail name, because the
#: resolver only resolves functions, never classes).
_CTOR_KINDS: Dict[str, str] = {
    "Semaphore": "sem",
    "Mutex": "sem",
    "Queue": "queue",
    "Barrier": "barrier",
    "EventSet": "es",
    "StagingBuffer": "staging",
    "CacheTier": "tier",
    "Reservation": "reservation",
    "StoredDataset": "dset",
    "Dataset": "dset",
}
#: ``x = <recv>.<attr>(...)`` creations.
_ATTR_CTOR_KINDS: Dict[str, str] = {
    "event": "event",
    "create_dataset": "dset",
}

#: kind -> method -> operation classes it performs.  A method *not* in
#: its kind's table escapes the token (unknown protocol interaction),
#: except for the lenient kinds below.
_KIND_OPS: Dict[str, Dict[str, Tuple[str, ...]]] = {
    "sem": {"acquire": (ACQUIRE,), "release": (RELEASE,)},
    "tier": {"take": (ACQUIRE,), "give": (RELEASE,)},
    "reservation": {"release": (RELEASE,)},
    "queue": {"get": (WAIT,), "put": (TRIGGER,), "close": (TRIGGER,),
              "pop_if": ()},
    "barrier": {"wait": (WAIT, TRIGGER)},  # arrival is its own trigger
    "es": {"wait": (WAIT,), "add": (TRIGGER,)},
    "staging": {"reserve": (WAIT,), "release": (TRIGGER,)},
    "event": {"succeed": (TRIGGER,), "fail": (TRIGGER,)},
    "dset": {},
}
#: Kinds whose unknown methods are neutral instead of escaping (their
#: protocol surface is open-ended and none of it affects RC6xx).
_LENIENT_KINDS = frozenset({"dset"})
#: Kinds with held/free state (RC601 ordering, RC604 balance).
_LOCK_KINDS = frozenset({"sem", "tier", "reservation"})
#: Kinds whose WAIT blocks until some *other* actor triggers (RC602).
#: ``barrier`` arrival triggers itself; ``es`` waits are the RC401
#: family's business.
_WAIT_KINDS = frozenset({"queue", "staging", "event"})
#: kind -> methods that satisfy its blocked waiters.
_TRIGGER_METHODS: Dict[str, Tuple[str, ...]] = {
    "queue": ("put", "close"),
    "staging": ("release",),
    "event": ("succeed", "fail"),
}
#: Trigger-ish methods on *unresolvable* receivers; any such loose call
#: excuses RC602 for every token of the matching kind (the trigger may
#: reach it through a path the token model cannot see).
_LOOSE_METHODS = frozenset({"put", "close", "release", "succeed", "fail"})
#: Method names recorded against parameters (validated against the
#: argument's kind at the call site; everything else is neutral).
_INTERESTING_METHODS = frozenset(
    m for table in _KIND_OPS.values() for m in table)
#: Parameter methods that move a lock-kind argument held/free.
_HOLD_METHODS = frozenset({"acquire", "take"})
_FREE_METHODS = frozenset({"release", "give"})
#: Methods that synchronize with other actors (non-empty op classes in
#: some kind table): calling one on *anything* gives the function a
#: happens-before edge, which excuses its spawns from RC603.
_SYNC_METHODS = frozenset(
    m for table in _KIND_OPS.values() for m, classes in table.items()
    if classes)
#: ``<recv>.<spawn>(generator_call, ...)`` starts a concurrent process.
_SPAWN_METHODS = frozenset({"process", "spawn"})

_PARAM = "param:"
_PARAM_KIND = "param"


def display_token(token: str) -> str:
    """Human-readable name of a token for finding messages."""
    if token.startswith("C:"):
        parts = token[2:].rsplit(".", 2)
        return ".".join(parts[-2:])
    if token.startswith("L:"):
        return token.rsplit(":", 1)[-1]
    if token.startswith(_PARAM):
        return f"parameter #{token[len(_PARAM):]}"
    return token


def _is_global(token: str) -> bool:
    return token.startswith(("C:", "L:"))


# ---------------------------------------------------------------------------
# Effects record (rides on FunctionSummary)
# ---------------------------------------------------------------------------

#: (opclass, token, kind, line, col, direct)
OpRec = Tuple[str, str, str, int, int, bool]
#: (held token, acquired token, line, col)
PairRec = Tuple[str, str, int, int]
#: (dataset token, start tuple, count tuple, line, col)
WriteRec = Tuple[str, Tuple[int, ...], Tuple[int, ...], int, int]
#: (line, col, callee qualname, writes, has_sync)
TaskRec = Tuple[int, int, str, Tuple[WriteRec, ...], bool]
#: (token, kind, line, col of first acquisition)
ImbalanceRec = Tuple[str, str, int, int]


@dataclass(frozen=True)
class ConcEffects:
    """Concurrency effect set of one function (direct + inherited)."""

    ops: Tuple[OpRec, ...] = ()
    pairs: Tuple[PairRec, ...] = ()
    #: Tokens (global or ``param:<i>``) this function may acquire,
    #: transitively through resolved callees.
    acquires: FrozenSet[str] = frozenset()
    #: Per-parameter interesting method names plus ``"escape"``.
    param_ops: Tuple[FrozenSet[str], ...] = ()
    #: Per-parameter exit lock state, subset of ``{held, free}``.
    param_exit: Tuple[FrozenSet[str], ...] = ()
    #: Exit lock states of class-attr tokens this function touches.
    global_exit: Tuple[Tuple[str, FrozenSet[str]], ...] = ()
    escaped: FrozenSet[str] = frozenset()
    #: Loose trigger-ish method names on unresolvable receivers.
    loose: FrozenSet[str] = frozenset()
    writes: Tuple[WriteRec, ...] = ()
    tasks: Tuple[TaskRec, ...] = ()
    has_sync: bool = False
    imbalance: Tuple[ImbalanceRec, ...] = ()

    def to_dict(self, sites: bool = True) -> Dict[str, object]:
        """JSON-safe form; ``sites=False`` drops line/col so the
        summary digest does not re-key callers on pure line shifts."""
        if sites:
            ops: List[object] = [list(o) for o in self.ops]
            pairs: List[object] = [list(p) for p in self.pairs]
            writes: List[object] = [
                [t, list(s), list(c), ln, co]
                for t, s, c, ln, co in self.writes]
            tasks: List[object] = [
                [ln, co, q, [[t, list(s), list(c), wl, wc]
                             for t, s, c, wl, wc in ws], sync]
                for ln, co, q, ws, sync in self.tasks]
            imbalance: List[object] = [list(i) for i in self.imbalance]
        else:
            ops = sorted({(o[0], o[1], o[2], o[5]) for o in self.ops})
            ops = [list(o) for o in ops]
            pairs = sorted({(p[0], p[1]) for p in self.pairs})
            pairs = [list(p) for p in pairs]
            writes = sorted({(t, s, c) for t, s, c, _, _ in self.writes})
            writes = [[t, list(s), list(c)] for t, s, c in writes]
            tasks = sorted({(q, tuple(sorted((t, s, c)
                                             for t, s, c, _, _ in ws)), sync)
                            for _, _, q, ws, sync in self.tasks})
            tasks = [[q, [[t, list(s), list(c)] for t, s, c in ws], sync]
                     for q, ws, sync in tasks]
            imbalance = sorted({(t, k) for t, k, _, _ in self.imbalance})
            imbalance = [list(i) for i in imbalance]
        return {
            "ops": ops,
            "pairs": pairs,
            "acquires": sorted(self.acquires),
            "param_ops": [sorted(p) for p in self.param_ops],
            "param_exit": [sorted(p) for p in self.param_exit],
            "global_exit": [[t, sorted(s)] for t, s in self.global_exit],
            "escaped": sorted(self.escaped),
            "loose": sorted(self.loose),
            "writes": writes,
            "tasks": tasks,
            "has_sync": self.has_sync,
            "imbalance": imbalance,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ConcEffects":
        def _writes(rows: object) -> Tuple[WriteRec, ...]:
            return tuple(
                (str(t), tuple(int(x) for x in s),
                 tuple(int(x) for x in c), int(ln), int(co))
                for t, s, c, ln, co in rows)  # type: ignore[union-attr]

        return cls(
            ops=tuple((str(a), str(b), str(c), int(d), int(e), bool(f))
                      for a, b, c, d, e, f in data["ops"]),  # type: ignore[union-attr]
            pairs=tuple((str(a), str(b), int(c), int(d))
                        for a, b, c, d in data["pairs"]),  # type: ignore[union-attr]
            acquires=frozenset(data["acquires"]),  # type: ignore[arg-type]
            param_ops=tuple(frozenset(p)
                            for p in data["param_ops"]),  # type: ignore[union-attr]
            param_exit=tuple(frozenset(p)
                             for p in data["param_exit"]),  # type: ignore[union-attr]
            global_exit=tuple(
                (str(t), frozenset(s))
                for t, s in data["global_exit"]),  # type: ignore[union-attr]
            escaped=frozenset(data["escaped"]),  # type: ignore[arg-type]
            loose=frozenset(data["loose"]),  # type: ignore[arg-type]
            writes=_writes(data["writes"]),
            tasks=tuple(
                (int(ln), int(co), str(q), _writes(ws), bool(sync))
                for ln, co, q, ws, sync in data["tasks"]),  # type: ignore[union-attr]
            has_sync=bool(data["has_sync"]),
            imbalance=tuple(
                (str(t), str(k), int(ln), int(co))
                for t, k, ln, co in data["imbalance"]),  # type: ignore[union-attr]
        )


EMPTY_CONC = ConcEffects()


def conservative_conc(info: FunctionInfo) -> ConcEffects:
    """The escape hedge as a concurrency summary: every parameter
    escapes, nothing else is claimed; ``has_sync`` is set so RC603
    never trusts a task spawned from a degraded summary."""
    return ConcEffects(
        param_ops=tuple(frozenset({"escape"}) for _ in info.params),
        param_exit=tuple(frozenset() for _ in info.params),
        has_sync=True,
    )


def optimistic_conc(info: FunctionInfo) -> ConcEffects:
    """Fixpoint seed inside recursive SCCs: assume no effects."""
    return ConcEffects(
        param_ops=tuple(frozenset() for _ in info.params),
        param_exit=tuple(frozenset() for _ in info.params),
    )


# ---------------------------------------------------------------------------
# Project-wide primitive attribute scan
# ---------------------------------------------------------------------------

def _ctor_kind(value: ast.expr) -> Optional[str]:
    """Primitive kind an assignment RHS constructs, if recognized."""
    inner = value.value if isinstance(value, (ast.Yield, ast.YieldFrom,
                                              ast.Await)) \
        and value.value is not None else value
    if not isinstance(inner, ast.Call):
        return None
    if isinstance(value, (ast.Yield, ast.YieldFrom)):
        # ``res = yield buf.reserve(n)``: the generator's return value
        # is a held Reservation; any other driven call is opaque.
        if isinstance(inner.func, ast.Attribute) \
                and inner.func.attr == "reserve":
            return "reservation"
        return None
    name = dotted(inner.func)
    if name is not None:
        tail = name.rsplit(".", 1)[-1]
        if tail in _CTOR_KINDS:
            return _CTOR_KINDS[tail]
    if isinstance(inner.func, ast.Attribute) \
            and inner.func.attr in _ATTR_CTOR_KINDS:
        return _ATTR_CTOR_KINDS[inner.func.attr]
    return None


def collect_prim_attrs(trees: Mapping[str, ast.Module]) -> Dict[str, str]:
    """``"<class qualname>.<attr>" -> kind`` for every primitive bound
    to ``self`` anywhere in a top-level class body.  Attributes with
    conflicting bindings (two kinds, or a non-constructor reassignment)
    are dropped — their identity is not single-valued."""
    from repro.check.callgraph import module_name_for_path

    seen: Dict[str, Optional[str]] = {}
    for path in sorted(trees):
        module = module_name_for_path(path)
        for stmt in trees[path].body:
            if not isinstance(stmt, ast.ClassDef):
                continue
            cls_qual = f"{module}.{stmt.name}"
            for method in stmt.body:
                if not isinstance(method, (ast.FunctionDef,
                                           ast.AsyncFunctionDef)):
                    continue
                args = method.args
                named = args.posonlyargs + args.args
                if not named:
                    continue
                self_name = named[0].arg
                for node in ast.walk(method):
                    if not (isinstance(node, ast.Assign)
                            and len(node.targets) == 1):
                        continue
                    target = node.targets[0]
                    if not (isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == self_name):
                        continue
                    key = f"{cls_qual}.{target.attr}"
                    kind = _ctor_kind(node.value)
                    if key in seen and seen[key] != kind:
                        seen[key] = None
                    elif key not in seen:
                        seen[key] = kind
    return {key: kind for key, kind in seen.items() if kind is not None}


# ---------------------------------------------------------------------------
# Per-function token scope
# ---------------------------------------------------------------------------

class _FuncScope:
    """Name -> token resolution for one function body."""

    def __init__(self, info: FunctionInfo, func: FuncDef,
                 view: object) -> None:
        self.info = info
        self.func = func
        self.view = view
        self.index = getattr(view, "index", None)
        self.prim_attrs: Dict[str, str] = getattr(view, "prim_attrs",
                                                  None) or {}
        self.param_index = {name: i for i, name in enumerate(info.params)}
        self.assigned_params: Set[str] = set()
        self.self_name: Optional[str] = None
        self.cls_qual: Optional[str] = None
        if info.kind == "method" and info.params:
            self.self_name = info.params[0]
            self.cls_qual = info.qualname.rsplit(".", 1)[0]
        #: local name -> (token, kind)
        self.locals: Dict[str, Tuple[str, str]] = {}
        #: token -> initial lock state at the binding site, if any.
        self.init_state: Dict[str, str] = {}
        self._attr_cache: Dict[str, Optional[Tuple[str, str]]] = {}
        self._prescan()

    def _prescan(self) -> None:
        assigns: Dict[str, List[Optional[str]]] = {}
        stack: List[ast.AST] = list(ast.iter_child_nodes(self.func))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda, ast.ClassDef)):
                # Nested bodies run later; their bindings are not ours
                # and captured tokens escape at the definition node.
                for name in _bound_names(node):
                    assigns.setdefault(name, []).append(None)
                continue
            stack.extend(ast.iter_child_nodes(node))
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                name = node.targets[0].id
                assigns.setdefault(name, []).append(_ctor_kind(node.value))
            else:
                for name in _stmt_bound_names(node):
                    assigns.setdefault(name, []).append(None)
        for name, kinds in assigns.items():
            if name in self.param_index:
                self.assigned_params.add(name)
                continue
            if len(kinds) == 1 and kinds[0] is not None:
                token = f"L:{self.info.qualname}:{name}"
                self.locals[name] = (token, kinds[0])
                if kinds[0] == "reservation":
                    self.init_state[token] = HELD

    def token_for(self, expr: ast.AST) -> Optional[Tuple[str, str]]:
        """``(token, kind)`` for an expression, or ``None``.  Kind is
        ``"param"`` for parameter tokens (real kind unknown here)."""
        if isinstance(expr, ast.Name):
            if expr.id in self.locals:
                return self.locals[expr.id]
            idx = self.param_index.get(expr.id)
            if idx is not None and expr.id not in self.assigned_params:
                return f"{_PARAM}{idx}", _PARAM_KIND
            return None
        if isinstance(expr, ast.Attribute) \
                and isinstance(expr.value, ast.Name) \
                and expr.value.id == self.self_name \
                and self.cls_qual is not None:
            cached = self._attr_cache.get(expr.attr, "miss")
            if cached != "miss":
                return cached  # type: ignore[return-value]
            resolved = self._lookup_attr(expr.attr)
            self._attr_cache[expr.attr] = resolved
            return resolved
        return None

    def _lookup_attr(self, attr: str) -> Optional[Tuple[str, str]]:
        queue: List[str] = [self.cls_qual or ""]
        seen: Set[str] = set()
        while queue:
            current = queue.pop(0)
            if not current or current in seen or len(seen) > 32:
                continue
            seen.add(current)
            key = f"{current}.{attr}"
            kind = self.prim_attrs.get(key)
            if kind is not None:
                return f"C:{key}", kind
            if self.index is not None:
                cls = self.index.classes.get(current)
                if cls is not None:
                    queue.extend(cls.resolved_bases)
        return None


def _bound_names(func: ast.AST) -> Iterator[str]:
    """Names a nested def/lambda shadows in the enclosing scope: only
    its own name (defs); argument names are its own scope."""
    if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
        yield func.name


def _stmt_bound_names(node: ast.AST) -> Iterator[str]:
    """Names (re)bound by a non-tokenizing statement."""
    if isinstance(node, ast.Assign):
        for target in node.targets:
            yield from _target_names(target)
    elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
        yield from _target_names(node.target)
    elif isinstance(node, (ast.For, ast.AsyncFor)):
        yield from _target_names(node.target)
    elif isinstance(node, (ast.With, ast.AsyncWith)):
        for item in node.items:
            if item.optional_vars is not None:
                yield from _target_names(item.optional_vars)
    elif isinstance(node, ast.excepthandler) and node.name:
        yield node.name
    elif isinstance(node, (ast.Global, ast.Nonlocal)):
        yield from node.names
    elif isinstance(node, ast.NamedExpr) \
            and isinstance(node.target, ast.Name):
        yield node.target.id


def _target_names(target: ast.expr) -> Iterator[str]:
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _target_names(element)
    elif isinstance(target, ast.Starred):
        yield from _target_names(target.value)


# ---------------------------------------------------------------------------
# Site actions: one syntactic pass per CFG node, memoized
# ---------------------------------------------------------------------------
#
# Action tuples (first element discriminates):
#   ("op", opclass, token, kind, line, col, direct)
#   ("cop", opclass, token, kind, line, col)   op inside a spawned
#                                      worker: recorded but concurrent,
#                                      so no env update and no pairing
#   ("exit", token, states)            exit lock states from a callee
#   ("escape", token)
#   ("loose", method)
#   ("write", token, start, count, line, col)
#   ("task", line, col, qual, writes, has_sync)
#   ("pair", held, acquired, line, col)   substituted callee pairs
#   ("acq", token)                     callee acquisition (held x pairing)
#   ("sync",)                          callee synchronizes internally
#   ("pop", index, method)             interesting method on a parameter
#   ("pexit", index, states)           callee exit states for a parameter
#   ("init", token, state)             binding-site lock state


def _iter_occurrences(scope: _FuncScope, exprs: Sequence[ast.expr]
                      ) -> Iterator[Tuple[ast.AST, str, str]]:
    """Token occurrences in ``exprs``: attribute access on a token does
    not count (reading ``sem.engine`` leaks nothing), nested lambda
    bodies are skipped (captures are handled via :func:`captured_names`)."""
    stack: List[Tuple[ast.AST, bool]] = [(e, False) for e in
                                         reversed(list(exprs))]
    while stack:
        node, under_attr = stack.pop()
        if isinstance(node, ast.Attribute):
            found = scope.token_for(node)
            if found is not None:
                yield node, found[0], found[1]
                continue
            stack.append((node.value, True))
            continue
        if isinstance(node, ast.Name):
            if under_attr:
                continue
            found = scope.token_for(node)
            if found is not None:
                yield node, found[0], found[1]
            continue
        if isinstance(node, ast.Lambda):
            continue
        for child in reversed(list(ast.iter_child_nodes(node))):
            stack.append((child, False))


def _constant_region(call: ast.Call
                     ) -> Optional[Tuple[Tuple[int, ...], Tuple[int, ...]]]:
    """``(start, count)`` of a ``Hyperslab(...)`` argument with constant
    integer tuples, else ``None``."""
    name = dotted(call.func)
    if name is None or name.rsplit(".", 1)[-1] != "Hyperslab":
        return None
    start: Optional[Tuple[int, ...]] = None
    count: Optional[Tuple[int, ...]] = None
    positional = list(call.args)
    if len(positional) >= 1:
        start = _int_tuple(positional[0])
    if len(positional) >= 2:
        count = _int_tuple(positional[1])
    for kw in call.keywords:
        if kw.arg == "start":
            start = _int_tuple(kw.value)
        elif kw.arg == "count":
            count = _int_tuple(kw.value)
    if start is None or count is None or len(start) != len(count):
        return None
    return start, count


def _int_tuple(expr: ast.expr) -> Optional[Tuple[int, ...]]:
    if not isinstance(expr, (ast.Tuple, ast.List)):
        return None
    out: List[int] = []
    for element in expr.elts:
        if isinstance(element, ast.Constant) \
                and isinstance(element.value, int) \
                and not isinstance(element.value, bool):
            out.append(element.value)
        else:
            return None
    return tuple(out)


class _SiteActions:
    """Per-node action extraction shared by the solve and the report
    walk (syntax only: no abstract state involved)."""

    def __init__(self, scope: _FuncScope) -> None:
        self.scope = scope
        self._memo: Dict[int, List[tuple]] = {}

    def actions(self, node: CFGNode) -> List[tuple]:
        cached = self._memo.get(node.index)
        if cached is None:
            cached = self._compute(node)
            self._memo[node.index] = cached
        return cached

    # -- helpers ----------------------------------------------------------
    def _summary_conc(self, call: ast.Call
                      ) -> Optional[Tuple[FunctionInfo, ConcEffects,
                                          Dict[int, ast.expr]]]:
        view = self.scope.view
        info = view.function_for_call(call)  # type: ignore[attr-defined]
        summary = view.summary_for_call(call)  # type: ignore[attr-defined]
        if info is None or summary is None:
            return None
        conc = getattr(summary, "conc", None)
        if conc is None:
            return None
        mapping = view.param_index_map(call)  # type: ignore[attr-defined]
        if mapping is None:
            return None
        return info, conc, mapping

    def _subst(self, endpoint: str,
               mapping: Dict[int, ast.expr]) -> Optional[str]:
        """Map a callee token endpoint into this function's namespace."""
        if endpoint.startswith(_PARAM):
            try:
                idx = int(endpoint[len(_PARAM):])
            except ValueError:
                return None
            expr = mapping.get(idx)
            if expr is None:
                return None
            found = self.scope.token_for(expr)
            return found[0] if found is not None else None
        return endpoint

    def _apply_callee(self, out: List[tuple], call: ast.Call,
                      info: FunctionInfo, conc: ConcEffects,
                      mapping: Dict[int, ast.expr],
                      handled: Set[int], line: int, col: int,
                      spawned: bool,
                      skip_receiver_index: Optional[int]) -> None:
        """Record a resolved callee's effects at this call site."""
        scope = self.scope
        for idx, expr in sorted(mapping.items()):
            found = scope.token_for(expr)
            if found is None:
                # Tokens buried inside a structured argument escape.
                for leaf, token, _kind in _iter_occurrences(scope, [expr]):
                    if id(leaf) not in handled:
                        handled.add(id(leaf))
                        out.append(("escape", token))
                continue
            token, kind = found
            handled.add(id(expr))
            if idx == skip_receiver_index:
                continue  # protocol receiver: the op table owns it
            methods = (conc.param_ops[idx]
                       if idx < len(conc.param_ops) else frozenset(
                           {"escape"}))
            if kind == _PARAM_KIND:
                if spawned:
                    # A worker holds our parameter beyond this frame's
                    # timeline; the caller must treat it as escaped.
                    out.append(("pop", int(token[len(_PARAM):]),
                                "escape"))
                else:
                    for method in sorted(methods):
                        out.append(("pop", int(token[len(_PARAM):]),
                                    method))
            else:
                table = _KIND_OPS.get(kind, {})
                for method in sorted(methods):
                    if method == "escape":
                        out.append(("escape", token))
                        continue
                    classes = table.get(method)
                    if classes is None:
                        if kind not in _LENIENT_KINDS:
                            out.append(("escape", token))
                        continue
                    for opclass in classes:
                        if spawned:
                            # Runs concurrently: its triggers/waits are
                            # real, but it never nests inside this
                            # frame's lock state.
                            out.append(("cop", opclass, token, kind,
                                        line, col))
                        else:
                            out.append(("op", opclass, token, kind,
                                        line, col, False))
            if not spawned:
                exits = (conc.param_exit[idx]
                         if idx < len(conc.param_exit) else frozenset())
                if exits and kind in _LOCK_KINDS:
                    out.append(("exit", token,
                                frozenset(_map_exit(exits))))
                elif exits and kind == _PARAM_KIND:
                    out.append(("pexit", int(token[len(_PARAM):]),
                                frozenset(exits)))
        for held, acquired, _ln, _co in conc.pairs:
            sub_h = self._subst(held, mapping)
            sub_a = self._subst(acquired, mapping)
            if sub_h is not None and sub_a is not None and sub_h != sub_a:
                out.append(("pair", sub_h, sub_a, line, col))
        if not spawned:
            # A spawned worker's acquisitions do not nest inside our
            # held set — only its internal (substituted) pairs count.
            for acquired in sorted(conc.acquires):
                sub_a = self._subst(acquired, mapping)
                if sub_a is not None:
                    out.append(("acq", sub_a))
            for token, states in conc.global_exit:
                out.append(("exit", token, states))
        for method in sorted(conc.loose):
            out.append(("loose", method))
        for token in sorted(conc.escaped):
            out.append(("escape", token))
        if conc.has_sync:
            out.append(("sync",))

    def _substituted_writes(self, conc: ConcEffects,
                            mapping: Dict[int, ast.expr],
                            line: int, col: int) -> Tuple[WriteRec, ...]:
        out: List[WriteRec] = []
        for token, start, count, _ln, _co in conc.writes:
            sub = self._subst(token, mapping)
            if sub is not None:
                out.append((sub, start, count, line, col))
        return tuple(out)

    # -- the extraction ---------------------------------------------------
    def _compute(self, node: CFGNode) -> List[tuple]:
        scope = self.scope
        stmt = node.ast_node
        out: List[tuple] = []
        if stmt is None:
            return out
        exprs = header_exprs(node)

        for name in captured_names(node):
            found = scope.locals.get(name)
            if found is not None:
                out.append(("escape", found[0]))
            elif name in scope.param_index \
                    and name not in scope.assigned_params:
                out.append(("pop", scope.param_index[name], "escape"))

        handled: Set[int] = set()
        consumed_calls: Set[int] = set()
        driven_ids: Set[int] = set()
        yielded_names: Dict[int, ast.AST] = {}
        for sub in _walk(exprs):
            if isinstance(sub, (ast.YieldFrom, ast.Await)) \
                    and isinstance(sub.value, ast.Call):
                driven_ids.add(id(sub.value))
            elif isinstance(sub, ast.Yield) and sub.value is not None \
                    and not isinstance(sub.value, ast.Call):
                yielded_names[id(sub.value)] = sub.value

        # ``yield ev`` on an event token is its blocking wait.
        for value in yielded_names.values():
            found = scope.token_for(value)
            if found is not None and found[1] == "event":
                handled.add(id(value))
                out.append(("op", WAIT, found[0], "event",
                            getattr(value, "lineno", node.line),
                            getattr(value, "col_offset", node.col), True))

        for sub in _walk(exprs):
            if not isinstance(sub, ast.Call) or id(sub) in consumed_calls:
                continue
            line = getattr(sub, "lineno", node.line)
            col = getattr(sub, "col_offset", node.col)

            # -- spawn: <recv>.process(generator_call, ...) ---------------
            if isinstance(sub.func, ast.Attribute) \
                    and sub.func.attr in _SPAWN_METHODS \
                    and sub.args and isinstance(sub.args[0], ast.Call):
                inner = sub.args[0]
                consumed_calls.add(id(inner))
                resolved = self._summary_conc(inner)
                if resolved is not None:
                    info, conc, mapping = resolved
                    self._apply_callee(out, inner, info, conc, mapping,
                                       handled, line, col, spawned=True,
                                       skip_receiver_index=None)
                    out.append(("task", line, col, info.qualname,
                                self._substituted_writes(conc, mapping,
                                                         line, col),
                                conc.has_sync))
                else:
                    for leaf, token, _k in _iter_occurrences(scope,
                                                             [inner]):
                        if id(leaf) not in handled:
                            handled.add(id(leaf))
                            out.append(("escape", token))
                consumed_calls.add(id(sub))
                continue

            # -- method call on a tokenized receiver ----------------------
            receiver_token: Optional[str] = None
            receiver_index: Optional[int] = None
            if isinstance(sub.func, ast.Attribute):
                recv = sub.func.value
                found = scope.token_for(recv)
                if found is not None:
                    token, kind = found
                    handled.add(id(recv))
                    receiver_token = token
                    method = sub.func.attr
                    if kind == _PARAM_KIND:
                        receiver_index = int(token[len(_PARAM):])
                        if method in _INTERESTING_METHODS:
                            out.append(("pop", receiver_index, method))
                            if method in _SYNC_METHODS:
                                out.append(("sync",))
                            if method in _HOLD_METHODS:
                                out.append(("op", ACQUIRE, token,
                                            _PARAM_KIND, line, col, True))
                            elif method in _FREE_METHODS:
                                out.append(("op", RELEASE, token,
                                            _PARAM_KIND, line, col, True))
                    else:
                        receiver_index = 0
                        table = _KIND_OPS.get(kind, {})
                        classes = table.get(method)
                        if method == "write" and kind == "dset":
                            self._record_write(out, sub, token, line, col)
                        elif classes is None:
                            if kind not in _LENIENT_KINDS:
                                out.append(("escape", token))
                        else:
                            for opclass in classes:
                                out.append(("op", opclass, token, kind,
                                            line, col, True))

            # ``.write`` region recording on a parameter receiver.
            if receiver_token is not None \
                    and receiver_token.startswith(_PARAM) \
                    and isinstance(sub.func, ast.Attribute) \
                    and sub.func.attr == "write":
                self._record_write(out, sub, receiver_token, line, col)

            # -- resolved project call ------------------------------------
            resolved = self._summary_conc(sub)
            if resolved is not None:
                info, conc, mapping = resolved
                driven = id(sub) in driven_ids
                if info.deferred and not driven:
                    # A bare generator/coroutine call: effects apply only
                    # if someone drives it later, somewhere we cannot
                    # see.  Escape the token arguments.
                    for idx, expr in mapping.items():
                        if idx == 0 and receiver_index == 0 \
                                and receiver_token is not None:
                            continue
                        for leaf, token, kind in _iter_occurrences(
                                scope, [expr]):
                            if id(leaf) in handled:
                                continue
                            handled.add(id(leaf))
                            if kind == _PARAM_KIND:
                                out.append(("pop",
                                            int(token[len(_PARAM):]),
                                            "escape"))
                            else:
                                out.append(("escape", token))
                else:
                    skip = receiver_index if receiver_token is not None \
                        and not receiver_token.startswith(_PARAM) else None
                    self._apply_callee(out, sub, info, conc, mapping,
                                       handled, line, col, spawned=False,
                                       skip_receiver_index=skip)
                    out.append(("writes",
                                self._substituted_writes(conc, mapping,
                                                         line, col)))
                continue

            # -- unresolved call: loose triggers + escapes ----------------
            if isinstance(sub.func, ast.Attribute) \
                    and sub.func.attr in _LOOSE_METHODS \
                    and receiver_token is None:
                out.append(("loose", sub.func.attr))
            arg_exprs: List[ast.expr] = list(sub.args)
            arg_exprs.extend(kw.value for kw in sub.keywords)
            for leaf, token, kind in _iter_occurrences(scope, arg_exprs):
                if id(leaf) in handled:
                    continue
                handled.add(id(leaf))
                if kind == _PARAM_KIND:
                    out.append(("pop", int(token[len(_PARAM):]), "escape"))
                else:
                    out.append(("escape", token))

        # -- binding sites: the target occurrence is the definition,
        # not a leak --------------------------------------------------------
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            bound: Optional[Tuple[str, str]] = None
            if isinstance(target, ast.Name):
                bound = scope.locals.get(target.id)
            elif isinstance(target, ast.Attribute):
                found = scope.token_for(target)
                if found is not None and found[0].startswith("C:"):
                    bound = found
            if bound is not None \
                    and _ctor_kind(stmt.value) == bound[1]:
                handled.add(id(target))
                init = scope.init_state.get(bound[0])
                if init is not None:
                    out.append(("init", bound[0], init))

        # -- every other occurrence escapes -------------------------------
        for leaf, token, kind in _iter_occurrences(scope, exprs):
            if id(leaf) in handled:
                continue
            if kind == _PARAM_KIND:
                if isinstance(stmt, (ast.Expr, ast.If, ast.While,
                                     ast.Assert, ast.For, ast.AsyncFor,
                                     ast.Match)) \
                        and not isinstance(leaf, ast.Attribute):
                    continue  # reading a parameter name leaks nothing
                out.append(("pop", int(token[len(_PARAM):]), "escape"))
            else:
                if isinstance(stmt, (ast.If, ast.While, ast.Assert)):
                    continue  # truthiness reads leak nothing
                out.append(("escape", token))
        return out

    def _record_write(self, out: List[tuple], call: ast.Call,
                      token: str, line: int, col: int) -> None:
        selection: Optional[ast.expr] = None
        if call.args:
            selection = call.args[0]
        for kw in call.keywords:
            if kw.arg == "selection":
                selection = kw.value
        if isinstance(selection, ast.Call):
            region = _constant_region(selection)
            if region is not None:
                out.append(("write", token, region[0], region[1],
                            line, col))


def _walk(exprs: Sequence[ast.expr]) -> Iterator[ast.AST]:
    """Pre-order walk that skips lambda bodies (they run later)."""
    stack: List[ast.AST] = list(reversed(list(exprs)))
    while stack:
        item = stack.pop()
        yield item
        if isinstance(item, ast.Lambda):
            continue
        stack.extend(reversed(list(ast.iter_child_nodes(item))))


def _map_exit(states: FrozenSet[str]) -> Set[str]:
    out: Set[str] = set()
    if HELD in states:
        out.add(HELD)
    if FREE in states:
        out.add(FREE)
    return out


# ---------------------------------------------------------------------------
# The lock-state dataflow + collection
# ---------------------------------------------------------------------------

class _LockAnalysis(ForwardAnalysis):
    """May-analysis of held/free lock states over tokens."""

    def __init__(self, actions: _SiteActions) -> None:
        self.actions = actions

    def initial(self, cfg: CFG) -> Env:
        return Env()

    def transfer(self, cfg: CFG, node: CFGNode, env: Env) -> Env:
        return _apply_actions(self.actions.actions(node), env)


def _apply_actions(actions: Sequence[tuple], env: Env) -> Env:
    out = env
    for action in actions:
        tag = action[0]
        if tag == "op":
            _, opclass, token, _kind, _ln, _co, _direct = action
            if opclass == ACQUIRE:
                out = out.set(token, frozenset({HELD}))
            elif opclass == RELEASE:
                out = out.set(token, frozenset({FREE}))
        elif tag == "exit":
            _, token, states = action
            if states:
                existing = out.get(token)
                if UNBOUND in states and existing:
                    out = out.set(token, frozenset(states) | existing)
                else:
                    out = out.set(token, frozenset(states))
        elif tag == "init":
            _, token, state = action
            out = out.set(token, frozenset({state}))
    return out


def analyze_function(info: FunctionInfo, func: FuncDef,
                     view: object) -> ConcEffects:
    """Compute one function's :class:`ConcEffects` (one solve + one
    replay over a fresh CFG)."""
    scope = _FuncScope(info, func, view)
    actions = _SiteActions(scope)
    cfg = build_cfg(func)
    try:
        in_states = solve(cfg, _LockAnalysis(actions))
    except FixpointDiverged:
        return conservative_conc(info)

    n_params = len(info.params)
    ops: List[OpRec] = []
    pairs: List[PairRec] = []
    acquires: Set[str] = set()
    param_ops: List[Set[str]] = [set() for _ in range(n_params)]
    escaped: Set[str] = set()
    loose: Set[str] = set()
    writes: List[WriteRec] = []
    tasks: List[TaskRec] = []
    token_kinds: Dict[str, str] = {}
    first_acquire: Dict[str, Tuple[int, int]] = {}
    has_sync = False
    seen: Set[tuple] = set()

    def held_tokens(env: Env) -> List[str]:
        return sorted(t for t, s in env.items() if HELD in s)

    for node in cfg.stmt_nodes():
        env = in_states.get(node.index)
        if env is None:
            continue  # unreachable
        for action in actions.actions(node):
            tag = action[0]
            key = action if tag != "writes" else None
            if key is not None:
                if key in seen:
                    # ``finally`` clones duplicate statements; replay
                    # the env transition but record each site once.
                    env = _apply_actions([action], env)
                    continue
                seen.add(key)
            if tag == "op":
                _, opclass, token, kind, line, col, direct = action
                ops.append((opclass, token, kind, line, col, direct))
                if kind != _PARAM_KIND:
                    token_kinds[token] = kind
                if opclass in (WAIT, TRIGGER):
                    has_sync = True
                if opclass == ACQUIRE:
                    has_sync = True
                    acquires.add(token)
                    first_acquire.setdefault(token, (line, col))
                    for held in held_tokens(env):
                        if held != token:
                            pairs.append((held, token, line, col))
                if opclass == RELEASE:
                    has_sync = True
            elif tag == "cop":
                _, opclass, token, kind, line, col = action
                ops.append((opclass, token, kind, line, col, False))
                if kind != _PARAM_KIND:
                    token_kinds[token] = kind
                has_sync = True
            elif tag == "acq":
                _, token = action
                acquires.add(token)
                # The callee's internal acquisition nests inside
                # whatever this function already holds here.
                ln, co = node.line, node.col
                for held in held_tokens(env):
                    if held != token:
                        pairs.append((held, token, ln, co))
            elif tag == "pair":
                _, held, acquired, line, col = action
                pairs.append((held, acquired, line, col))
            elif tag == "escape":
                escaped.add(action[1])
            elif tag == "loose":
                loose.add(action[1])
            elif tag == "write":
                _, token, start, count, line, col = action
                writes.append((token, start, count, line, col))
            elif tag == "writes":
                writes.extend(action[1])
            elif tag == "task":
                _, line, col, qual, task_writes, sync = action
                tasks.append((line, col, qual, task_writes, sync))
            elif tag == "pop":
                _, idx, method = action
                if 0 <= idx < n_params:
                    param_ops[idx].add(method)
            elif tag == "sync":
                has_sync = True
            env = _apply_actions([action], env)

    exit_env = in_states.get(cfg.exit)
    param_exit: List[FrozenSet[str]] = []
    global_exit: List[Tuple[str, FrozenSet[str]]] = []
    imbalance: List[ImbalanceRec] = []
    if exit_env is not None:
        for i in range(n_params):
            states = exit_env.get(f"{_PARAM}{i}") or frozenset()
            param_exit.append(frozenset(_map_exit(states)))
        for token, states in sorted(exit_env.items()):
            if token.startswith("C:"):
                kept = frozenset(
                    s for s in states if s in (HELD, FREE, UNBOUND))
                if kept & {HELD, FREE}:
                    global_exit.append((token, kept))
            if _is_global(token) \
                    and token_kinds.get(token) in _LOCK_KINDS \
                    and HELD in states and FREE in states:
                line, col = first_acquire.get(
                    token, (func.lineno, func.col_offset))
                imbalance.append((token, token_kinds[token], line, col))
    else:
        param_exit = [frozenset() for _ in range(n_params)]

    return ConcEffects(
        ops=tuple(sorted(set(ops))),
        pairs=tuple(sorted(set(pairs))),
        acquires=frozenset(acquires),
        param_ops=tuple(frozenset(p) for p in param_ops),
        param_exit=tuple(param_exit),
        global_exit=tuple(global_exit),
        escaped=frozenset(escaped),
        loose=frozenset(loose),
        writes=tuple(sorted(set(writes))),
        tasks=tuple(sorted(set(tasks))),
        has_sync=has_sync,
        imbalance=tuple(sorted(set(imbalance))),
    )


# ---------------------------------------------------------------------------
# Global index: acquisition-order graph + wait/trigger matching
# ---------------------------------------------------------------------------

#: (rule id, path, line, col, message)
FindingRec = Tuple[str, str, int, int, str]


@dataclass(frozen=True)
class ConcIndex:
    """Whole-project concurrency verdicts, plain data (picklable)."""

    findings: Tuple[FindingRec, ...] = ()
    #: Tokens with at least one reachable trigger (diagnostics).
    triggered: FrozenSet[str] = frozenset()
    escaped: FrozenSet[str] = frozenset()

    @property
    def digest(self) -> str:
        blob = json.dumps(
            [list(f) for f in self.findings], sort_keys=True,
            separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]

    def findings_for(self, path: str) -> List[Tuple[str, int, int, str]]:
        return [(rule, line, col, message)
                for rule, f_path, line, col, message in self.findings
                if f_path == path]


def _overlaps(a: WriteRec, b: WriteRec) -> bool:
    if a[0] != b[0] or len(a[1]) != len(b[1]):
        return False
    for start_a, count_a, start_b, count_b in zip(a[1], a[2], b[1], b[2]):
        if not (start_a < start_b + count_b
                and start_b < start_a + count_a):
            return False
    return True


def _region(write: WriteRec) -> str:
    return (f"[{','.join(map(str, write[1]))}"
            f")+({','.join(map(str, write[2]))})")


def build_conc_index(summaries: Mapping[str, object],
                     functions: Mapping[str, FunctionInfo]) -> ConcIndex:
    """Assemble the global graph and pre-compute RC601-RC604 findings.

    ``summaries`` maps qualname to anything carrying a ``.conc``
    :class:`ConcEffects`; ``functions`` supplies file paths."""
    effects: Dict[str, ConcEffects] = {}
    for qual, summary in summaries.items():
        conc = getattr(summary, "conc", None)
        if conc is not None and qual in functions:
            effects[qual] = conc

    path_of = {qual: functions[qual].path for qual in effects}
    escaped: Set[str] = set()
    loose: Set[str] = set()
    triggered: Set[str] = set()
    for conc in effects.values():
        escaped |= conc.escaped
        loose |= conc.loose
        for op in conc.ops:
            if op[0] == TRIGGER and _is_global(op[1]):
                triggered.add(op[1])

    findings: List[FindingRec] = []

    # -- RC601: acquisition-order cycles --------------------------------
    edges: Dict[str, Set[str]] = {}
    site_of: Dict[Tuple[str, str], Tuple[str, int, int]] = {}
    for qual in sorted(effects):
        conc = effects[qual]
        for held, acquired, line, col in conc.pairs:
            if not (_is_global(held) and _is_global(acquired)):
                continue
            if held == acquired:
                continue
            edges.setdefault(held, set()).add(acquired)
            edges.setdefault(acquired, set())
            site = (path_of[qual], line, col)
            if (held, acquired) not in site_of \
                    or site < site_of[(held, acquired)]:
                site_of[(held, acquired)] = site
    for component in strongly_connected_components(edges):
        if len(component) < 2:
            continue
        members = set(component)
        cycle = " -> ".join(display_token(t) for t in sorted(members))
        for held in sorted(members):
            for acquired in sorted(edges.get(held, ())):
                if acquired not in members:
                    continue
                path, line, col = site_of[(held, acquired)]
                findings.append((
                    "RC601", path, line, col,
                    f"{display_token(acquired)} is acquired while "
                    f"{display_token(held)} is held, closing an "
                    f"acquisition-order cycle ({cycle}); concurrent "
                    f"callers can deadlock"))

    # -- RC602: blocking wait with no reachable trigger -----------------
    seen_waits: Set[Tuple[str, int, int, str]] = set()
    for qual in sorted(effects):
        conc = effects[qual]
        path = path_of[qual]
        for opclass, token, kind, line, col, direct in conc.ops:
            if opclass != WAIT or kind not in _WAIT_KINDS:
                continue
            if not _is_global(token):
                continue  # parameter waits are checked via substitution
            if token.startswith("C:") and not direct:
                continue  # the defining method already reports it
            if token in triggered or token in escaped:
                continue
            if any(m in loose for m in _TRIGGER_METHODS[kind]):
                continue  # a trigger may reach it through opaque code
            key = (path, line, col, token)
            if key in seen_waits:
                continue
            seen_waits.add(key)
            methods = "/".join(_TRIGGER_METHODS[kind])
            findings.append((
                "RC602", path, line, col,
                f"blocking wait on {kind} {display_token(token)!r} has "
                f"no reachable trigger ({methods} is never called on "
                f"it); the waiter sleeps forever"))

    # -- RC603: conflicting region writes without happens-before --------
    for qual in sorted(effects):
        conc = effects[qual]
        path = path_of[qual]
        for i, first in enumerate(conc.tasks):
            for second in conc.tasks[i + 1:]:
                if first[4] or second[4]:
                    continue  # some synchronization exists in a task
                hit = next(
                    ((w1, w2) for w1 in first[3] for w2 in second[3]
                     if _overlaps(w1, w2)), None)
                if hit is None:
                    continue
                w1, w2 = hit
                findings.append((
                    "RC603", path, second[0], second[1],
                    f"concurrently spawned tasks "
                    f"({first[2].rsplit('.', 1)[-1]} and "
                    f"{second[2].rsplit('.', 1)[-1]}) write overlapping "
                    f"regions {_region(w1)} and {_region(w2)} of "
                    f"{display_token(w1[0])} with no happens-before "
                    f"edge between them"))

    # -- RC604: claim/release imbalance ---------------------------------
    for qual in sorted(effects):
        conc = effects[qual]
        path = path_of[qual]
        for token, kind, line, col in conc.imbalance:
            if token in escaped:
                continue
            findings.append((
                "RC604", path, line, col,
                f"{kind} {display_token(token)!r} is released on some "
                f"paths but still held on others at function exit "
                f"(an exception path can leak the claim)"))

    return ConcIndex(
        findings=tuple(sorted(set(findings))),
        triggered=frozenset(triggered),
        escaped=frozenset(escaped),
    )
