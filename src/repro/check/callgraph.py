"""Project-wide call graph for the interprocedural tier (``--inter``).

The flow tier's escape hedge gives up on any handle that crosses a
function boundary.  This module supplies the structure the summary tier
(:mod:`repro.check.summaries`) needs to look *through* those
boundaries:

- :class:`ProjectIndex` — every function/method/class defined under the
  linted roots, keyed by a dotted qualname (``repro.sim.engine.Engine.run``,
  nested defs as ``module.outer.<locals>.inner``).  Plain data, safe to
  share with worker processes.
- :class:`FileResolver` — one pass over a file's AST producing an
  ``id(Call) -> qualname`` map.  It understands imports (absolute,
  relative, aliased), module attribute chains, ``self``/``cls`` methods
  through base classes, and locally constructed instances
  (``es = EventSet(); es.wait()``).  Everything else — lambdas,
  higher-order values, dynamic attributes — stays *opaque*: the call
  simply does not resolve and callers fall back to the escape hedge.
- :func:`strongly_connected_components` — Tarjan condensation of the
  function-level graph, emitted bottom-up (callees before callers) so
  summaries can be computed in one sweep with a fixpoint only inside
  recursive components.

Decorated functions resolve to their undecorated bodies (decorator
unwrapping); ``@staticmethod``/``@classmethod`` only shift the implicit
first argument at call sites.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import PurePath
from typing import Dict, List, Optional, Sequence, Set, Tuple

__all__ = [
    "ClassInfo",
    "FileResolver",
    "FunctionInfo",
    "ProjectIndex",
    "build_index",
    "build_call_graph",
    "collect_function_nodes",
    "iter_own_calls",
    "module_name_for_path",
    "strongly_connected_components",
]

LOCALS = "<locals>"


def module_name_for_path(path: str) -> str:
    """Dotted module name a file path denotes (``src/`` stripped)."""
    parts = list(PurePath(path).parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if "src" in parts:
        last = len(parts) - 1 - parts[::-1].index("src")
        parts = parts[last + 1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(part for part in parts if part not in (".", "/"))


@dataclass(frozen=True)
class FunctionInfo:
    """One indexed ``def`` (module-level, method or nested)."""

    qualname: str
    module: str
    path: str
    params: Tuple[str, ...]  # every named parameter, in order, incl. self
    kind: str  # "function" | "method" | "staticmethod" | "classmethod"
    has_vararg: bool
    has_kwarg: bool
    lineno: int
    #: Generator or ``async def``: a bare call only creates the
    #: generator/coroutine object; effects apply when *driven*
    #: (``yield from`` / ``await``).
    deferred: bool = False

    @property
    def bound_offset(self) -> int:
        """Parameters consumed by the receiver at ``obj.m(...)`` sites."""
        return 1 if self.kind in ("method", "classmethod") else 0


@dataclass
class ClassInfo:
    """One indexed class: its methods and (resolved) bases."""

    qualname: str
    module: str
    methods: Dict[str, str] = field(default_factory=dict)
    bases: Tuple[str, ...] = ()  # raw dotted names as written
    resolved_bases: Tuple[str, ...] = ()  # class qualnames (pass 2)


@dataclass
class ProjectIndex:
    """Plain-data index of every definition under the linted roots."""

    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    modules: Dict[str, str] = field(default_factory=dict)  # module -> path
    #: module -> top-level name -> qualname (function or class).
    module_defs: Dict[str, Dict[str, str]] = field(default_factory=dict)
    #: module -> import alias -> dotted target.
    imports: Dict[str, Dict[str, str]] = field(default_factory=dict)

    def method_on(self, class_qualname: str,
                  name: str) -> Optional[str]:
        """Qualname of ``name`` on a class or its bases (BFS, bounded)."""
        seen: Set[str] = set()
        queue: List[str] = [class_qualname]
        while queue:
            current = queue.pop(0)
            if current in seen or len(seen) > 32:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                continue
            if name in info.methods:
                return info.methods[name]
            queue.extend(info.resolved_bases)
        return None


def _decorator_names(node: ast.AST) -> Tuple[str, ...]:
    names: List[str] = []
    for dec in getattr(node, "decorator_list", []):
        target = dec.func if isinstance(dec, ast.Call) else dec
        dotted = _dotted(target)
        if dotted is not None:
            names.append(dotted)
    return tuple(names)


def _is_generator(node: "ast.FunctionDef | ast.AsyncFunctionDef") -> bool:
    """Whether the function body (nested defs excluded) yields."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.Lambda, ast.ClassDef)):
            continue
        if isinstance(child, (ast.Yield, ast.YieldFrom)):
            return True
        stack.extend(ast.iter_child_nodes(child))
    return False


def _dotted(expr: ast.AST) -> Optional[str]:
    parts: List[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def collect_imports(tree: ast.Module, module: str,
                    is_package: bool) -> Dict[str, str]:
    """Map each locally bound import alias to its dotted target."""
    out: Dict[str, str] = {}
    package = module if is_package else module.rpartition(".")[0]
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    out[alias.asname] = alias.name
                else:
                    out[alias.name.split(".")[0]] = alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0:
                base = node.module or ""
            else:
                base_parts = package.split(".") if package else []
                strip = node.level - 1
                if strip:
                    base_parts = base_parts[:-strip] if strip <= len(
                        base_parts) else []
                if node.module:
                    base_parts.append(node.module)
                base = ".".join(base_parts)
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                out[bound] = f"{base}.{alias.name}" if base else alias.name
    return out


class _IndexWalker:
    """Collect definitions of one file into a :class:`ProjectIndex`."""

    def __init__(self, index: ProjectIndex, path: str,
                 module: str) -> None:
        self.index = index
        self.path = path
        self.module = module

    def walk(self, tree: ast.Module) -> None:
        defs = self.index.module_defs.setdefault(self.module, {})
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{self.module}.{stmt.name}"
                defs[stmt.name] = qualname
                self._function(stmt, qualname, kind="function")
            elif isinstance(stmt, ast.ClassDef):
                qualname = f"{self.module}.{stmt.name}"
                defs[stmt.name] = qualname
                self._class(stmt, qualname)

    def _class(self, node: ast.ClassDef, qualname: str) -> None:
        info = ClassInfo(
            qualname=qualname, module=self.module,
            bases=tuple(b for b in (_dotted(base) for base in node.bases)
                        if b is not None),
        )
        self.index.classes[qualname] = info
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                decorators = _decorator_names(stmt)
                kind = "method"
                if any(d.rsplit(".", 1)[-1] == "staticmethod"
                       for d in decorators):
                    kind = "staticmethod"
                elif any(d.rsplit(".", 1)[-1] == "classmethod"
                         for d in decorators):
                    kind = "classmethod"
                if any(d.rsplit(".", 1)[-1] == "property"
                       for d in decorators):
                    continue  # attribute access, not a call target
                method_qualname = f"{qualname}.{stmt.name}"
                info.methods[stmt.name] = method_qualname
                self._function(stmt, method_qualname, kind=kind)

    def _function(self, node: "ast.FunctionDef | ast.AsyncFunctionDef",
                  qualname: str, kind: str) -> None:
        args = node.args
        params = tuple(a.arg for a in
                       (args.posonlyargs + args.args + args.kwonlyargs))
        self.index.functions[qualname] = FunctionInfo(
            qualname=qualname, module=self.module, path=self.path,
            params=params, kind=kind,
            has_vararg=args.vararg is not None,
            has_kwarg=args.kwarg is not None,
            lineno=node.lineno,
            deferred=(isinstance(node, ast.AsyncFunctionDef)
                      or _is_generator(node)),
        )
        # Nested defs are callable within the enclosing scope only.
        for stmt in ast.walk(node):
            if stmt is node:
                continue
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nested = f"{qualname}.{LOCALS}.{stmt.name}"
                if nested not in self.index.functions:
                    self._function(stmt, nested, kind="function")


def build_index(sources: Dict[str, "ast.Module"]) -> ProjectIndex:
    """Index every definition in ``{posix path: parsed tree}``."""
    index = ProjectIndex()
    for path in sorted(sources):
        tree = sources[path]
        module = module_name_for_path(path)
        if not module:
            continue
        index.modules[module] = path
        is_package = PurePath(path).name == "__init__.py"
        index.imports[module] = collect_imports(tree, module, is_package)
        _IndexWalker(index, path, module).walk(tree)
    _resolve_bases(index)
    return index


def _resolve_bases(index: ProjectIndex) -> None:
    """Second pass: raw base names -> class qualnames where possible."""
    for info in index.classes.values():
        resolved: List[str] = []
        imports = index.imports.get(info.module, {})
        defs = index.module_defs.get(info.module, {})
        for base in info.bases:
            head, _, rest = base.partition(".")
            target: Optional[str] = None
            if head in defs and not rest:
                target = defs[head]
            elif head in imports:
                dotted = imports[head] + (f".{rest}" if rest else "")
                if dotted in index.classes:
                    target = dotted
                else:
                    # ``from m import C`` where C lives in m's defs.
                    mod, _, name = dotted.rpartition(".")
                    candidate = index.module_defs.get(mod, {}).get(name)
                    if candidate in index.classes:
                        target = candidate
            if target is not None and target in index.classes:
                resolved.append(target)
        info.resolved_bases = tuple(resolved)


class FileResolver:
    """Resolve each ``ast.Call`` in one file to a project qualname.

    One instance per (file, tree); :attr:`calls` maps ``id(call_node)``
    to the callee qualname for every call it could resolve, and
    :attr:`opaque` counts the ones it could not (lambdas, dynamic
    attributes, unknown names) — those stay conservative.
    """

    def __init__(self, index: ProjectIndex, path: str,
                 tree: ast.Module) -> None:
        self.index = index
        self.path = path
        self.module = module_name_for_path(path)
        self.calls: Dict[int, str] = {}
        #: id(call) -> how the callee was reached: ``"instance"``
        #: (``obj.m()`` on a typed local / self), ``"class"``
        #: (``Cls.m(obj)``) or ``"plain"`` (module-level function).  The
        #: summary tier uses this to map arguments onto parameters.
        self.receivers: Dict[int, str] = {}
        self.opaque: int = 0
        module_scope: Dict[str, Tuple[str, str]] = {}
        for alias, target in index.imports.get(self.module, {}).items():
            module_scope[alias] = ("import", target)
        for name, qualname in index.module_defs.get(self.module,
                                                    {}).items():
            module_scope[name] = ("def", qualname)
        self._walk_body(tree.body, [module_scope], enclosing_class=None,
                        enclosing_func=None)

    # -- scope machinery --------------------------------------------------
    def _lookup(self, scopes: List[Dict[str, Tuple[str, str]]],
                name: str) -> Optional[Tuple[str, str]]:
        for scope in reversed(scopes):
            if name in scope:
                spec = scope[name]
                return None if spec[0] == "opaque" else spec
        return None

    def _class_of_call(self, call: ast.expr,
                       scopes: List[Dict[str, Tuple[str, str]]]
                       ) -> Optional[str]:
        """Class qualname a ``Name = ClassName(...)`` RHS constructs."""
        if not isinstance(call, ast.Call):
            return None
        dotted = _dotted(call.func)
        if dotted is None:
            return None
        resolved = self._resolve_dotted(dotted, scopes)
        if resolved is not None and resolved[0] in self.index.classes:
            return resolved[0]
        return None

    def _resolve_dotted(self, dotted: str,
                        scopes: List[Dict[str, Tuple[str, str]]]
                        ) -> Optional[Tuple[str, str]]:
        """``(qualname, receiver kind)`` for a dotted reference."""
        head, _, rest = dotted.partition(".")
        spec = self._lookup(scopes, head)
        if spec is None:
            return None
        kind, target = spec
        if kind == "instance":
            # Methods on a typed local (``es.wait``); deeper attribute
            # chains (``es.log.flush``) stay opaque.
            if rest and "." not in rest:
                method = self.index.method_on(target, rest)
                if method is not None:
                    return method, "instance"
            return None
        full = f"{target}.{rest}" if rest else target
        resolved = self._canonical(full)
        if resolved is None:
            return None
        info = self.index.functions.get(resolved)
        if info is not None and info.kind in ("method", "classmethod",
                                              "staticmethod"):
            return resolved, "class"  # ``Cls.m(obj, ...)`` style
        return resolved, "plain"

    def _canonical(self, full: str) -> Optional[str]:
        """Map a dotted path to an indexed function/class qualname."""
        if full in self.index.functions or full in self.index.classes:
            return full
        # ``import a.b`` / ``from a import b`` chains: find the longest
        # module prefix, then descend through its top-level defs.
        parts = full.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:cut])
            if module in self.index.modules:
                defs = self.index.module_defs.get(module, {})
                head = parts[cut] if cut < len(parts) else None
                if head is None or head not in defs:
                    return None
                candidate = defs[head]
                remainder = parts[cut + 1:]
                for piece in remainder:
                    if candidate in self.index.classes:
                        method = self.index.method_on(candidate, piece)
                        if method is None:
                            return None
                        candidate = method
                    else:
                        return None
                if candidate in self.index.functions \
                        or candidate in self.index.classes:
                    return candidate
                return None
        return None

    # -- tree walk --------------------------------------------------------
    def _walk_body(self, body: Sequence[ast.stmt],
                   scopes: List[Dict[str, Tuple[str, str]]],
                   enclosing_class: Optional[str],
                   enclosing_func: Optional[str]) -> None:
        for stmt in body:
            self._stmt(stmt, scopes, enclosing_class, enclosing_func)

    def _stmt(self, stmt: ast.stmt,
              scopes: List[Dict[str, Tuple[str, str]]],
              enclosing_class: Optional[str],
              enclosing_func: Optional[str]) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._enter_function(stmt, scopes, enclosing_class,
                                 enclosing_func)
            return
        if isinstance(stmt, ast.ClassDef):
            self._enter_class(stmt, scopes, enclosing_func)
            return
        for expr in ast.walk(stmt):
            if isinstance(expr, ast.Call):
                self._resolve_call(expr, scopes)
            elif isinstance(expr, ast.Lambda):
                self.opaque += 1
        # Flow-insensitive local typing: single-assignment constructor
        # bindings were pre-scanned at function entry; nothing to do here.

    def _qualname_for(self, name: str, enclosing_class: Optional[str],
                      enclosing_func: Optional[str]) -> str:
        if enclosing_func is not None:
            return f"{enclosing_func}.{LOCALS}.{name}"
        if enclosing_class is not None:
            return f"{enclosing_class}.{name}"
        return f"{self.module}.{name}"

    def _enter_class(self, node: ast.ClassDef,
                     scopes: List[Dict[str, Tuple[str, str]]],
                     enclosing_func: Optional[str]) -> None:
        for dec in node.decorator_list:
            if isinstance(dec, ast.Call):
                self._resolve_call(dec, scopes)
        if enclosing_func is not None:
            return  # classes inside functions are out of scope
        qualname = f"{self.module}.{node.name}"
        self._walk_body(node.body, scopes + [{}],
                        enclosing_class=qualname, enclosing_func=None)

    def _enter_function(self, node: "ast.FunctionDef | ast.AsyncFunctionDef",
                        scopes: List[Dict[str, Tuple[str, str]]],
                        enclosing_class: Optional[str],
                        enclosing_func: Optional[str]) -> None:
        for dec in node.decorator_list:
            if isinstance(dec, ast.Call):
                self._resolve_call(dec, scopes)
        qualname = self._qualname_for(node.name, enclosing_class,
                                      enclosing_func)
        local: Dict[str, Tuple[str, str]] = {}
        args = node.args
        named = args.posonlyargs + args.args + args.kwonlyargs
        for arg in named:
            local[arg.arg] = ("opaque", "")
        for extra in (args.vararg, args.kwarg):
            if extra is not None:
                local[extra.arg] = ("opaque", "")
        info = self.index.functions.get(qualname)
        if (enclosing_class is not None and named and info is not None
                and info.kind in ("method", "classmethod")):
            local[named[0].arg] = ("instance", enclosing_class)
        # Pre-scan: sibling nested defs (mutual recursion) and
        # single-type constructor locals.
        assigned_types: Dict[str, Optional[str]] = {}
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                local[stmt.name] = (
                    "def", f"{qualname}.{LOCALS}.{stmt.name}")
        for stmt in ast.walk(node):
            if stmt is node:
                continue
            if isinstance(stmt, ast.Assign) \
                    and len(stmt.targets) == 1 \
                    and isinstance(stmt.targets[0], ast.Name):
                name = stmt.targets[0].id
                cls = self._class_of_call(stmt.value, scopes)
                if name in assigned_types and assigned_types[name] != cls:
                    assigned_types[name] = None
                else:
                    assigned_types[name] = cls
            elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)) \
                    and isinstance(stmt.target, ast.Name):
                assigned_types[stmt.target.id] = None
            elif isinstance(stmt, (ast.For, ast.AsyncFor, ast.With,
                                   ast.AsyncWith)):
                pass  # loop/with targets never get constructor typing
        for name, cls in assigned_types.items():
            if cls is not None and name not in local:
                local[name] = ("instance", cls)
            elif name not in local:
                local[name] = ("opaque", "")
        self._walk_body(node.body, scopes + [local],
                        enclosing_class=None, enclosing_func=qualname)

    def _resolve_call(self, call: ast.Call,
                      scopes: List[Dict[str, Tuple[str, str]]]) -> None:
        dotted = _dotted(call.func)
        if dotted is None:
            self.opaque += 1
            return
        resolved = self._resolve_dotted(dotted, scopes)
        if resolved is not None and resolved[0] in self.index.functions:
            self.calls[id(call)] = resolved[0]
            self.receivers[id(call)] = resolved[1]
        else:
            self.opaque += 1


def collect_function_nodes(
        tree: ast.Module,
        module: str) -> Dict[str, "ast.FunctionDef | ast.AsyncFunctionDef"]:
    """``qualname -> def node`` for every function in one file's tree."""
    out: Dict[str, "ast.FunctionDef | ast.AsyncFunctionDef"] = {}

    def visit(node: ast.AST, owner: Optional[str],
              class_ctx: Optional[str]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if owner is not None:
                    qualname = f"{owner}.{LOCALS}.{child.name}"
                elif class_ctx is not None:
                    qualname = f"{class_ctx}.{child.name}"
                else:
                    qualname = f"{module}.{child.name}"
                out.setdefault(qualname, child)
                visit(child, qualname, None)
            elif isinstance(child, ast.ClassDef):
                if owner is None and class_ctx is None:
                    visit(child, None, f"{module}.{child.name}")
                else:
                    visit(child, owner, class_ctx)
            else:
                visit(child, owner, class_ctx)

    visit(tree, None, None)
    return out


def iter_own_calls(func: "ast.FunctionDef | ast.AsyncFunctionDef"
                   ) -> List[ast.Call]:
    """Calls lexically in ``func`` but not in a nested ``def``/class.

    Lambdas are *included* (they have no qualname of their own, so the
    innermost named function owns their calls).
    """
    out: List[ast.Call] = []
    stack: List[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue
        if isinstance(node, ast.Call):
            out.append(node)
        stack.extend(ast.iter_child_nodes(node))
    return out


def build_call_graph(index: ProjectIndex,
                     sources: Dict[str, "ast.Module"]
                     ) -> Dict[str, Set[str]]:
    """Function-level edges ``caller qualname -> callee qualnames``.

    Each resolved call is attributed to its innermost enclosing named
    function; module-level calls have no caller node and are dropped.
    """
    edges: Dict[str, Set[str]] = {q: set() for q in index.functions}
    for path in sorted(sources):
        tree = sources[path]
        resolver = FileResolver(index, path, tree)
        module = module_name_for_path(path)
        for qualname, func in collect_function_nodes(tree, module).items():
            bucket = edges.setdefault(qualname, set())
            for call in iter_own_calls(func):
                callee = resolver.calls.get(id(call))
                if callee is not None:
                    bucket.add(callee)
    return edges


def strongly_connected_components(
        edges: Dict[str, Set[str]]) -> List[Tuple[str, ...]]:
    """Tarjan SCCs of ``edges``, bottom-up (callees before callers).

    Iterative (no recursion limit risk on deep graphs) and
    deterministic: nodes are visited in sorted order and members of each
    component are sorted.
    """
    index_of: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    components: List[Tuple[str, ...]] = []
    counter = [0]

    def strongconnect(root: str) -> None:
        work: List[Tuple[str, int]] = [(root, 0)]
        while work:
            node, child_index = work.pop()
            if child_index == 0:
                index_of[node] = counter[0]
                lowlink[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            recurse = False
            successors = sorted(edges.get(node, ()))
            for offset in range(child_index, len(successors)):
                succ = successors[offset]
                if succ not in edges:
                    continue
                if succ not in index_of:
                    work.append((node, offset + 1))
                    work.append((succ, 0))
                    recurse = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[succ])
            if recurse:
                continue
            if lowlink[node] == index_of[node]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(tuple(sorted(component)))
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])

    for node in sorted(edges):
        if node not in index_of:
            strongconnect(node)
    return components
