"""Bounded-height abstract domains for the ``repro check`` flow tier.

The flow rules (RC4xx typestate, RC5xx units) all operate over the same
shape of abstract state: a map from local variable names to a *set of
possible abstract values* drawn from a finite alphabet (typestates such
as ``es:pending`` or dimensions such as ``seconds``).  The powerset of
a finite alphabet is a finite-height lattice, and the per-variable join
is set union, so every forward fixpoint over these environments
terminates without widening — the property the acceptance gate on the
solver relies on.

:data:`UNBOUND` marks "the variable may be undefined on this path"; it
is injected when a join sees a variable tracked on one side only, so
must-style checks (``states == {CLOSED}``) cannot claim definiteness
across a branch that never bound the variable.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, Mapping, Optional, Tuple

__all__ = ["Env", "UNBOUND"]

#: Abstract value meaning "possibly unbound on some path into this join".
UNBOUND = "?"

States = FrozenSet[str]


class Env:
    """Immutable map ``variable name -> frozenset of abstract values``.

    Missing keys mean "not tracked" (top for the rule's purposes);
    unreachable program points are represented as ``None`` at the
    solver level, never as an :class:`Env`.
    """

    __slots__ = ("_map",)

    def __init__(self, mapping: Optional[Mapping[str, States]] = None) -> None:
        self._map: Dict[str, States] = dict(mapping or {})

    # -- reads ------------------------------------------------------------
    def get(self, name: str) -> Optional[States]:
        """States of ``name``, or ``None`` when untracked."""
        return self._map.get(name)

    def items(self) -> Iterator[Tuple[str, States]]:
        return iter(self._map.items())

    def __contains__(self, name: str) -> bool:
        return name in self._map

    def __len__(self) -> int:
        return len(self._map)

    # -- functional updates ----------------------------------------------
    def set(self, name: str, states: States) -> "Env":
        """A copy with ``name`` bound to ``states``."""
        mapping = dict(self._map)
        mapping[name] = frozenset(states)
        return Env(mapping)

    def remove(self, name: str) -> "Env":
        """A copy with ``name`` untracked (no-op when absent)."""
        if name not in self._map:
            return self
        mapping = dict(self._map)
        del mapping[name]
        return Env(mapping)

    # -- lattice ----------------------------------------------------------
    def join(self, other: "Env") -> "Env":
        """Pointwise union; one-sided keys gain :data:`UNBOUND`."""
        mapping: Dict[str, States] = {}
        for name, states in self._map.items():
            theirs = other._map.get(name)
            if theirs is None:
                mapping[name] = states | {UNBOUND}
            else:
                mapping[name] = states | theirs
        for name, states in other._map.items():
            if name not in self._map:
                mapping[name] = states | {UNBOUND}
        return Env(mapping)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Env):
            return NotImplemented
        return self._map == other._map

    def __hash__(self) -> int:  # pragma: no cover - envs are not dict keys
        return hash(frozenset(self._map.items()))

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{name}={{{', '.join(sorted(states))}}}"
            for name, states in sorted(self._map.items())
        )
        return f"Env({inner})"
