"""Intraprocedural control-flow graphs over Python AST.

The flow tier of ``repro check`` (RC4xx/RC5xx) needs statement-level
control flow: which statements may execute before which, across
branches, loops (including ``break``/``continue``/``else``), ``with``
blocks and ``try``/``except``/``finally`` (including ``return`` inside
a ``try`` routing through the ``finally`` suite).  This module builds
that graph; :mod:`repro.check.dataflow` runs fixpoint analyses over it.

Design notes
------------

- One :class:`CFGNode` per *statement*.  Compound statements get a node
  for their header (the ``if``/``while`` test, the ``for`` iterable,
  the ``with`` items, the ``try`` keyword) and separate nodes for the
  statements in their suites.  ``except`` handlers get a header node
  carrying the :class:`ast.ExceptHandler` (its ``as`` name binding is
  visible to transfer functions).
- ``finally`` suites are *cloned* per continuation class (normal fall
  through, ``return``, ``break``, ``continue``, propagating ``raise``),
  so a ``return`` inside ``try`` correctly flows through the ``finally``
  statements and then to the function exit — never to the statement
  after the ``try``.  Clones mean one ``ast.stmt`` may back several
  nodes; analyses must not assume the mapping is injective.
- Exception edges are approximate: every statement inside a ``try``
  body may jump to every one of its handlers.  Implicit exceptions
  outside ``try`` are not modeled (only explicit ``raise`` routes to
  the function exit), which keeps the graph small and is conservative
  for the may-analyses built on top.
- Nested ``def``/``class``/``lambda`` bodies are *not* inlined; the
  nested definition is a single statement node and nested functions are
  analyzed with their own CFGs (see :func:`iter_functions`).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Union

__all__ = ["CFG", "CFGNode", "FuncDef", "build_cfg", "iter_functions"]

FuncDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]


@dataclass
class CFGNode:
    """One vertex: a statement (or synthetic entry/exit/handler marker)."""

    index: int
    ast_node: Optional[ast.AST]  # None for entry/exit
    kind: str  # "entry" | "exit" | "stmt" | "except"
    succs: List[int] = field(default_factory=list)
    preds: List[int] = field(default_factory=list)

    @property
    def line(self) -> int:
        """Source line (1 for the synthetic entry/exit nodes)."""
        return getattr(self.ast_node, "lineno", 1)

    @property
    def col(self) -> int:
        """Source column (0 for the synthetic entry/exit nodes)."""
        return getattr(self.ast_node, "col_offset", 0)


@dataclass
class CFG:
    """Control-flow graph of one function body."""

    func: FuncDef
    nodes: List[CFGNode]
    entry: int
    exit: int

    def stmt_nodes(self) -> Iterator[CFGNode]:
        """Real statement/handler nodes (skips entry/exit)."""
        for node in self.nodes:
            if node.kind in ("stmt", "except"):
                yield node


class _Frames:
    """Pending-jump collectors threaded through the recursive build.

    Each collector is a list of node indices whose control transfers to
    the channel's target once it is known.  ``try/finally`` intercepts
    the *top* of each stack (``break``/``continue`` target the innermost
    loop; ``raise`` propagates to the innermost handler group), routes
    the collected jumps through a clone of the ``finally`` suite, and
    re-emits them into the original collector.
    """

    def __init__(self) -> None:
        self.returns: List[int] = []
        self.break_stack: List[List[int]] = []
        self.continue_stack: List[List[int]] = []
        # Bottom entry collects uncaught raises (wired to the exit).
        self.raise_stack: List[List[int]] = [[]]


class _Builder:
    def __init__(self, func: FuncDef) -> None:
        self.func = func
        self.nodes: List[CFGNode] = []
        self.entry = self._new(None, "entry")
        self.exit = self._new(None, "exit")

    # -- graph primitives -------------------------------------------------
    def _new(self, ast_node: Optional[ast.AST], kind: str = "stmt") -> int:
        node = CFGNode(index=len(self.nodes), ast_node=ast_node, kind=kind)
        self.nodes.append(node)
        return node.index

    def _edge(self, src: int, dst: int) -> None:
        if dst not in self.nodes[src].succs:
            self.nodes[src].succs.append(dst)
            self.nodes[dst].preds.append(src)

    def _wire(self, preds: List[int], dst: int) -> None:
        for src in preds:
            self._edge(src, dst)

    # -- construction -----------------------------------------------------
    def build(self) -> CFG:
        frames = _Frames()
        out = self._block(self.func.body, [self.entry], frames)
        self._wire(out, self.exit)
        self._wire(frames.returns, self.exit)
        self._wire(frames.raise_stack[0], self.exit)
        return CFG(func=self.func, nodes=self.nodes, entry=self.entry,
                   exit=self.exit)

    def _block(self, stmts: List[ast.stmt], preds: List[int],
               frames: _Frames) -> List[int]:
        for stmt in stmts:
            preds = self._stmt(stmt, preds, frames)
        return preds

    def _stmt(self, stmt: ast.stmt, preds: List[int],
              frames: _Frames) -> List[int]:
        if isinstance(stmt, ast.If):
            return self._if(stmt, preds, frames)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(stmt, preds, frames)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, preds, frames)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, preds, frames)
        if isinstance(stmt, ast.Match):
            return self._match(stmt, preds, frames)
        node = self._new(stmt)
        self._wire(preds, node)
        if isinstance(stmt, ast.Return):
            frames.returns.append(node)
            return []
        if isinstance(stmt, ast.Raise):
            frames.raise_stack[-1].append(node)
            return []
        if isinstance(stmt, ast.Break):
            if frames.break_stack:
                frames.break_stack[-1].append(node)
            return []
        if isinstance(stmt, ast.Continue):
            if frames.continue_stack:
                frames.continue_stack[-1].append(node)
            return []
        return [node]

    def _if(self, stmt: ast.If, preds: List[int],
            frames: _Frames) -> List[int]:
        test = self._new(stmt)
        self._wire(preds, test)
        then_out = self._block(stmt.body, [test], frames)
        if stmt.orelse:
            else_out = self._block(stmt.orelse, [test], frames)
        else:
            else_out = [test]
        return then_out + else_out

    def _loop(self, stmt: Union[ast.While, ast.For, ast.AsyncFor],
              preds: List[int], frames: _Frames) -> List[int]:
        header = self._new(stmt)
        self._wire(preds, header)
        breaks: List[int] = []
        continues: List[int] = []
        frames.break_stack.append(breaks)
        frames.continue_stack.append(continues)
        body_out = self._block(stmt.body, [header], frames)
        frames.break_stack.pop()
        frames.continue_stack.pop()
        self._wire(body_out, header)
        self._wire(continues, header)
        # Normal termination (test false / iterator exhausted) runs the
        # loop ``else`` suite; ``break`` skips it.
        if stmt.orelse:
            else_out = self._block(stmt.orelse, [header], frames)
        else:
            else_out = [header]
        return else_out + breaks

    def _with(self, stmt: Union[ast.With, ast.AsyncWith],
              preds: List[int], frames: _Frames) -> List[int]:
        header = self._new(stmt)
        self._wire(preds, header)
        return self._block(stmt.body, [header], frames)

    def _match(self, stmt: ast.Match, preds: List[int],
               frames: _Frames) -> List[int]:
        header = self._new(stmt)
        self._wire(preds, header)
        outs: List[int] = [header]  # conservatively: no case may match
        for case in stmt.cases:
            outs.extend(self._block(case.body, [header], frames))
        return outs

    def _try(self, stmt: ast.Try, preds: List[int],
             frames: _Frames) -> List[int]:
        has_finally = bool(stmt.finalbody)
        # Intercept every abrupt channel that could cross the finally.
        intercepted = []  # (collected, original) collector pairs
        if has_finally:
            original_returns = frames.returns
            frames.returns = []
            intercepted.append((frames.returns, original_returns))
            original_raises = frames.raise_stack[-1]
            frames.raise_stack[-1] = []
            intercepted.append((frames.raise_stack[-1], original_raises))
            if frames.break_stack:
                original_breaks = frames.break_stack[-1]
                frames.break_stack[-1] = []
                intercepted.append((frames.break_stack[-1], original_breaks))
            if frames.continue_stack:
                original_continues = frames.continue_stack[-1]
                frames.continue_stack[-1] = []
                intercepted.append(
                    (frames.continue_stack[-1], original_continues))

        handler_outs: List[int] = []
        if stmt.handlers:
            frames.raise_stack.append([])
        start = len(self.nodes)
        body_out = self._block(stmt.body, preds, frames)
        end = len(self.nodes)
        if stmt.handlers:
            caught = frames.raise_stack.pop()
            handler_entries: List[int] = []
            for handler in stmt.handlers:
                h_node = self._new(handler, "except")
                handler_entries.append(h_node)
                handler_outs.extend(
                    self._block(handler.body, [h_node], frames))
            # Any statement in the try body may raise into any handler;
            # explicit raises collected above land there too.
            for index in range(start, end):
                if self.nodes[index].kind == "stmt":
                    for h_node in handler_entries:
                        self._edge(index, h_node)
            for index in caught:
                for h_node in handler_entries:
                    self._edge(index, h_node)
        if stmt.orelse:
            body_out = self._block(stmt.orelse, body_out, frames)
        normal_out = body_out + handler_outs

        if not has_finally:
            return normal_out
        # Restore the original channels *before* cloning the finally
        # suite, so abrupt jumps inside the finally target the outer
        # context, then route each intercepted class through its clone.
        pairs = []
        for collected, original in intercepted:
            pairs.append((list(collected), original))
        frames.returns = intercepted[0][1]
        frames.raise_stack[-1] = intercepted[1][1]
        rest = intercepted[2:]
        if frames.break_stack and rest:
            frames.break_stack[-1] = rest[0][1]
            rest = rest[1:]
        if frames.continue_stack and rest:
            frames.continue_stack[-1] = rest[0][1]
        out = self._block(stmt.finalbody, normal_out, frames)
        for collected, original in pairs:
            if collected:
                clone_out = self._block(stmt.finalbody, collected, frames)
                original.extend(clone_out)
        return out


def build_cfg(func: FuncDef) -> CFG:
    """Build the control-flow graph of one function definition."""
    return _Builder(func).build()


def iter_functions(tree: ast.AST) -> Iterator[FuncDef]:
    """Every ``def``/``async def`` in ``tree``, including nested ones."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node
