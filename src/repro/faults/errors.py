"""Typed failure taxonomy for the simulated I/O stack.

Every injected fault raises (or fails an event with) a subclass of
:class:`FaultError`, so recovery code can distinguish *injected,
potentially-transient* faults — which the async VOL retries and
eventually survives via sync fallback — from programming errors, which
must propagate unchanged.  The hierarchy mirrors where in the stack the
fault bites:

``FaultError``
    ├── ``TransientIOError`` — retryable storage-side faults
    │     ├── ``PFSUnavailableError``   (outage window: whole PFS down)
    │     ├── ``FlakyWriteError``       (per-op probabilistic write error)
    │     ├── ``FlakyReadError``        (per-op probabilistic read error)
    │     └── ``SSDFaultError``         (node-local drive failed)
    ├── ``NodeFailureError`` — a whole compute node crashed (not
    │     retryable in place: the resident job is dead; the scheduler
    │     requeues it on surviving nodes)
    ├── ``WorkerCrashError``  — a rank's background I/O thread died
    ├── ``WorkerStallError``  — informational: worker paused (GC, OS jitter)
    ├── ``StagingTimeoutError`` — bounded staging reservation expired
    └── ``RetryExhaustedError`` — the retry budget ran out (carries the
          last underlying fault as ``__cause__``)
"""

from __future__ import annotations

__all__ = [
    "FaultError",
    "FlakyReadError",
    "FlakyWriteError",
    "NodeFailureError",
    "PFSUnavailableError",
    "RetryExhaustedError",
    "SSDFaultError",
    "StagingTimeoutError",
    "TransientIOError",
    "WorkerCrashError",
    "WorkerStallError",
]


class FaultError(IOError):
    """Base class of every injected fault."""


class TransientIOError(FaultError):
    """A storage-side fault that may succeed when retried."""


class PFSUnavailableError(TransientIOError):
    """The shared parallel file system is inside an outage window."""

    def __init__(self, message: str, until: float = float("nan")):
        super().__init__(message)
        #: Simulated time at which the outage window ends (recovery code
        #: can sleep until then instead of blind-retrying).
        self.until = until


class FlakyWriteError(TransientIOError):
    """One write request was dropped (e.g. an OST bounced the RPC)."""


class FlakyReadError(TransientIOError):
    """One read request was dropped."""


class SSDFaultError(TransientIOError):
    """A node-local staging drive failed."""


class NodeFailureError(FaultError):
    """A whole compute node went down (hardware fault, cabinet power).

    Delivered as the *cause* of the scheduler's kill interrupt, never
    raised into storage-request paths: a node crash is not an I/O error
    to retry in place — the job dies and is requeued elsewhere.
    """

    def __init__(self, message: str, node: int = -1):
        super().__init__(message)
        #: Index of the failed node within the cluster allocation.
        self.node = node


class WorkerCrashError(FaultError):
    """The rank's background I/O worker (Argobots thread) crashed."""


class WorkerStallError(FaultError):
    """The background worker stalled (never raised into user code; used
    to label stall entries in the fault trace)."""


class StagingTimeoutError(FaultError):
    """A bounded staging-buffer reservation expired before space freed."""


class RetryExhaustedError(FaultError):
    """Bounded retry gave up; ``__cause__`` holds the final fault."""
