"""Typed failure taxonomy for the simulated I/O stack.

Every injected fault raises (or fails an event with) a subclass of
:class:`FaultError`, so recovery code can distinguish *injected,
potentially-transient* faults — which the async VOL retries and
eventually survives via sync fallback — from programming errors, which
must propagate unchanged.  The hierarchy mirrors where in the stack the
fault bites:

``FaultError``
    ├── ``TransientIOError`` — retryable storage-side faults
    │     ├── ``PFSUnavailableError``   (outage window: whole PFS down)
    │     ├── ``FlakyWriteError``       (per-op probabilistic write error)
    │     ├── ``FlakyReadError``        (per-op probabilistic read error)
    │     ├── ``SSDFaultError``         (node-local drive failed)
    │     └── ``TierDegradedError``     (staging-cache tier inside a
    │           degradation window: the cache bypasses the tier or
    │           serves from the PFS — no data loss, deadlines may slip)
    ├── ``NodeFailureError`` — a whole compute node crashed (not
    │     retryable in place: the resident job is dead; the scheduler
    │     requeues it on surviving nodes)
    ├── ``WorkerCrashError``  — a rank's background I/O thread died
    ├── ``WorkerStallError``  — informational: worker paused (GC, OS jitter)
    ├── ``StagingTimeoutError`` — bounded staging reservation expired
    ├── ``CacheAdmissionError`` — a cache tier rejected a block (full and
    │     nothing evictable); the request is served from the source tier
    └── ``RetryExhaustedError`` — the retry budget ran out (carries the
          last underlying fault as ``__cause__``)
"""

from __future__ import annotations

__all__ = [
    "CacheAdmissionError",
    "FaultError",
    "FlakyReadError",
    "FlakyWriteError",
    "NodeFailureError",
    "PFSUnavailableError",
    "RetryExhaustedError",
    "SSDFaultError",
    "StagingTimeoutError",
    "TierDegradedError",
    "TransientIOError",
    "WorkerCrashError",
    "WorkerStallError",
]


class FaultError(IOError):
    """Base class of every injected fault."""


class TransientIOError(FaultError):
    """A storage-side fault that may succeed when retried."""


class PFSUnavailableError(TransientIOError):
    """The shared parallel file system is inside an outage window."""

    def __init__(self, message: str, until: float = float("nan")):
        super().__init__(message)
        #: Simulated time at which the outage window ends (recovery code
        #: can sleep until then instead of blind-retrying).
        self.until = until


class FlakyWriteError(TransientIOError):
    """One write request was dropped (e.g. an OST bounced the RPC)."""


class FlakyReadError(TransientIOError):
    """One read request was dropped."""


class SSDFaultError(TransientIOError):
    """A node-local staging drive failed."""


class TierDegradedError(TransientIOError):
    """A staging-cache tier is inside an injected degradation window.

    Raised at copy issue (before any bytes move) so a rejected
    tier-to-tier copy is always retry- or bypass-safe: the block still
    exists on its source tier and the planner serves it from there.

    ``until`` carries the window's end when known, mirroring
    :class:`PFSUnavailableError` so backoff code can wait it out.
    """

    def __init__(self, message: str, until: float = float("nan")):
        super().__init__(message)
        #: Simulated time at which the degradation window ends.
        self.until = until


class NodeFailureError(FaultError):
    """A whole compute node went down (hardware fault, cabinet power).

    Delivered as the *cause* of the scheduler's kill interrupt, never
    raised into storage-request paths: a node crash is not an I/O error
    to retry in place — the job dies and is requeued elsewhere.
    """

    def __init__(self, message: str, node: int = -1):
        super().__init__(message)
        #: Index of the failed node within the cluster allocation.
        self.node = node


class WorkerCrashError(FaultError):
    """The rank's background I/O worker (Argobots thread) crashed."""


class WorkerStallError(FaultError):
    """The background worker stalled (never raised into user code; used
    to label stall entries in the fault trace)."""


class StagingTimeoutError(FaultError):
    """A bounded staging-buffer reservation expired before space freed."""


class CacheAdmissionError(FaultError):
    """A cache tier rejected a block: the tier is full and eviction
    could not free enough space (everything resident is pinned or
    in flight).  The block stays on its source tier — admission control
    degrades service, never correctness."""


class RetryExhaustedError(FaultError):
    """Bounded retry gave up; ``__cause__`` holds the final fault."""
