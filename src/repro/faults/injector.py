"""Seeded, trace-recorded fault injection for the simulated I/O stack.

The paper's evaluation covers only the happy path; real async-VOL
deployments must survive the unhappy ones — the staged data lives in
node memory until the background drain lands it on the PFS, and the
shared PFS is precisely the volatile component (Fig. 8).  This module
makes failure a first-class simulated event:

- :class:`FaultConfig` declares a *schedule* of injectable faults:
  PFS outage and degradation windows, per-op flaky write/read errors
  with configurable probability, per-node SSD failures, and background
  worker stalls and crashes.
- :class:`FaultInjector` applies the schedule through hooks in
  :mod:`repro.platform.storage` (``fault_hook`` on the PFS and SSDs),
  :mod:`repro.platform.contention` (a shared fault-timeline recorder)
  and :mod:`repro.hdf5.async_vol` (worker dispositions, retry jitter).

Everything is deterministic per seed: the same ``(config, workload)``
pair produces an identical :attr:`FaultInjector.trace` on every run —
CI enforces this via :meth:`FaultInjector.signature`.  With no faults
configured, every hook is ``None`` and the simulation's event schedule
is untouched (the layer is zero-cost-off).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Generator, Optional

import numpy as np

from repro.faults.errors import (
    FlakyReadError,
    FlakyWriteError,
    PFSUnavailableError,
    SSDFaultError,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.platform.cluster import Cluster
    from repro.sim.engine import Engine

__all__ = [
    "FaultConfig",
    "FaultEvent",
    "FaultInjector",
    "OutageWindow",
    "SlowdownWindow",
]

#: Tag prefixes marking *reliable-path* storage requests (the sync
#: fallback ladder): the injector never fails these, mirroring a
#: blocking retry-until-success H5Dwrite.
RELIABLE_TAGS = ("fallback-w", "fallback-r")


@dataclass(frozen=True)
class OutageWindow:
    """The PFS rejects new requests during ``[start, start+duration)``."""

    start: float
    duration: float

    def __post_init__(self) -> None:
        if self.start < 0 or self.duration <= 0:
            raise ValueError(f"invalid outage window: {self}")

    @property
    def end(self) -> float:
        return self.start + self.duration

    def covers(self, t: float) -> bool:
        return self.start <= t < self.end


@dataclass(frozen=True)
class SlowdownWindow:
    """Shared storage runs at ``factor`` of capacity during the window
    (an overloaded or recovering PFS), composing multiplicatively with
    the contention model's availability."""

    start: float
    duration: float
    factor: float

    def __post_init__(self) -> None:
        if self.start < 0 or self.duration <= 0:
            raise ValueError(f"invalid slowdown window: {self}")
        if not 0.0 < self.factor < 1.0:
            raise ValueError(
                f"slowdown factor must be in (0,1), got {self.factor}"
            )

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass(frozen=True)
class FaultConfig:
    """Declarative, seed-deterministic schedule of injectable faults."""

    seed: int = 0
    #: Probability that one PFS write request errors (checked at issue).
    write_error_rate: float = 0.0
    #: Probability that one PFS read request errors.
    read_error_rate: float = 0.0
    #: Hard PFS outage windows (new requests raise, in-flight complete).
    pfs_outages: tuple[OutageWindow, ...] = ()
    #: Soft degradation windows (capacity scaled, nothing fails).
    pfs_slowdowns: tuple[SlowdownWindow, ...] = ()
    #: ``(node_index, at_time)``: the node's local SSD fails at ``at_time``.
    ssd_failures: tuple[tuple[int, float], ...] = ()
    #: ``(rank, after_tasks)``: the rank's background worker crashes
    #: after executing ``after_tasks`` tasks.
    worker_crashes: tuple[tuple[int, int], ...] = ()
    #: ``(rank, at_task, seconds)``: the worker stalls before task
    #: number ``at_task`` (0-based) for ``seconds``.
    worker_stalls: tuple[tuple[int, int, float], ...] = ()

    def __post_init__(self) -> None:
        for rate, label in ((self.write_error_rate, "write_error_rate"),
                            (self.read_error_rate, "read_error_rate")):
            if not 0.0 <= rate < 1.0:
                raise ValueError(f"{label} must be in [0,1), got {rate}")
        for node, at in self.ssd_failures:
            if node < 0 or at < 0:
                raise ValueError(f"invalid ssd failure ({node}, {at})")
        for rank, after in self.worker_crashes:
            if rank < 0 or after < 0:
                raise ValueError(f"invalid worker crash ({rank}, {after})")
        for rank, at_task, seconds in self.worker_stalls:
            if rank < 0 or at_task < 0 or seconds <= 0:
                raise ValueError(
                    f"invalid worker stall ({rank}, {at_task}, {seconds})"
                )

    @property
    def any_pfs_faults(self) -> bool:
        """Whether the PFS hook has anything to do at all."""
        return bool(self.write_error_rate or self.read_error_rate
                    or self.pfs_outages)


@dataclass(frozen=True)
class FaultEvent:
    """One entry of the injected-fault timeline."""

    t: float
    kind: str
    info: tuple[tuple[str, str], ...] = field(default_factory=tuple)

    def signature(self) -> tuple:
        """Hashable, repr-stable identity (CI determinism checks)."""
        return (round(self.t, 9), self.kind, self.info)


class FaultInjector:
    """Applies a :class:`FaultConfig` to one simulation, recording every
    injected fault into a deterministic trace."""

    def __init__(self, config: Optional[FaultConfig] = None):
        self.config = config if config is not None else FaultConfig()
        self.trace: list[FaultEvent] = []
        # Purpose-split RNG streams: per-op error draws and retry jitter
        # must not perturb each other's sequences when one is unused.
        self._op_rng = np.random.default_rng((self.config.seed, 0xF1))
        self._retry_rng = np.random.default_rng((self.config.seed, 0xF2))
        self.engine: Optional["Engine"] = None
        self._failed_ssds: set[int] = set()
        self._task_counts: dict[int, int] = {}
        self._crash_after = dict(self.config.worker_crashes)
        self._crashed_ranks: set[int] = set()
        self._stalls = {(rank, at): seconds
                        for rank, at, seconds in self.config.worker_stalls}

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, cluster: "Cluster") -> "FaultInjector":
        """Install hooks into ``cluster``'s storage layer and schedule
        the time-based fault windows.  Returns self for chaining."""
        if self.engine is not None:
            raise RuntimeError("FaultInjector already attached")
        self.engine = cluster.engine
        if self.config.any_pfs_faults:
            cluster.pfs.fault_hook = self.pfs_hook
        for start_t, factor in self._slowdown_edges():
            self.engine.schedule(
                start_t - self.engine.now, self._apply_slowdown,
                cluster.pfs, factor,
            )
        for node_index, at in self.config.ssd_failures:
            if node_index < len(cluster.nodes):
                node = cluster.nodes[node_index]
                if node.spec.local_ssd is not None:
                    node.ssd.fault_hook = self.ssd_hook
                    self.engine.schedule(
                        at - self.engine.now, self._fail_ssd, node_index
                    )
        return self

    def _slowdown_edges(self) -> list[tuple[float, float]]:
        """(time, factor) capacity edges for the slowdown schedule."""
        edges = []
        for w in self.config.pfs_slowdowns:
            edges.append((w.start, w.factor))
            edges.append((w.end, 1.0))
        return sorted(edges)

    def _apply_slowdown(self, pfs, factor: float) -> None:
        pfs.set_fault_factor(factor)
        self.note("pfs_slowdown", factor=factor)

    def _fail_ssd(self, node_index: int) -> None:
        self._failed_ssds.add(node_index)
        self.note("ssd_failed", node=node_index)

    # ------------------------------------------------------------------
    # Storage hooks (called from platform.storage at request issue)
    # ------------------------------------------------------------------
    def pfs_hook(self, op: str, node, target, nbytes: float, tag) -> None:
        """May raise a :class:`TransientIOError` for one PFS request."""
        if isinstance(tag, tuple) and tag and tag[0] in RELIABLE_TAGS:
            return
        now = self.engine.now
        window = self._outage_at(now)
        if window is not None:
            self.note("pfs_outage_hit", op=op, tag=tag, until=window.end)
            raise PFSUnavailableError(
                f"PFS outage until t={window.end:.6g} (op={op})",
                until=window.end,
            )
        rate = (self.config.write_error_rate if op == "write"
                else self.config.read_error_rate)
        if rate > 0.0 and self._op_rng.random() < rate:
            self.note("flaky_" + op, tag=tag, nbytes=nbytes)
            exc = FlakyWriteError if op == "write" else FlakyReadError
            raise exc(f"injected {op} error (tag={tag!r})")

    def ssd_hook(self, op: str, node_index: int, nbytes: float, tag) -> None:
        """May raise :class:`SSDFaultError` for one local-drive request."""
        if node_index in self._failed_ssds:
            self.note("ssd_fault_hit", op=op, node=node_index)
            raise SSDFaultError(f"node {node_index} local SSD failed")

    def _outage_at(self, t: float) -> Optional[OutageWindow]:
        for window in self.config.pfs_outages:
            if window.covers(t):
                return window
        return None

    def pfs_available(self, t: Optional[float] = None) -> bool:
        """Whether the PFS accepts new requests at ``t`` (default: now)."""
        return self._outage_at(self.engine.now if t is None else t) is None

    def when_pfs_available(self) -> Generator:
        """Process helper: block until outside every outage window (the
        reliable fallback path waits out a hard outage instead of
        failing)."""
        while True:
            window = self._outage_at(self.engine.now)
            if window is None:
                return
            yield self.engine.timeout(window.end - self.engine.now)

    # ------------------------------------------------------------------
    # Async-VOL hooks
    # ------------------------------------------------------------------
    def worker_disposition(self, rank: int) -> Optional[tuple[str, float]]:
        """Called by the background worker before each task.

        Returns ``None`` (proceed), ``("stall", seconds)`` (sleep, then
        proceed) or ``("crash", 0.0)`` (the worker dies now).  Task
        counting is per rank and monotonic, so a schedule like
        ``worker_crashes=((3, 2),)`` deterministically kills rank 3's
        worker after its second task regardless of interleaving.
        """
        count = self._task_counts.get(rank, 0)
        self._task_counts[rank] = count + 1
        after = self._crash_after.get(rank)
        if after is not None and count >= after and rank not in self._crashed_ranks:
            self._crashed_ranks.add(rank)
            self.note("worker_crash", rank=rank, task=count)
            return ("crash", 0.0)
        seconds = self._stalls.get((rank, count))
        if seconds is not None:
            self.note("worker_stall", rank=rank, task=count, seconds=seconds)
            return ("stall", seconds)
        return None

    def retry_jitter(self) -> float:
        """Multiplicative backoff jitter in [0.5, 1.5) — seeded, so the
        whole retry cascade replays identically per seed."""
        return 0.5 + float(self._retry_rng.random())

    # ------------------------------------------------------------------
    # Trace
    # ------------------------------------------------------------------
    def note(self, kind: str, t: Optional[float] = None, **info) -> None:
        """Append one event to the fault timeline.  Also used by the
        contention layer to interleave availability changes with faults
        on a single timeline."""
        if t is None:
            t = self.engine.now if self.engine is not None else 0.0
        self.trace.append(FaultEvent(
            t=t, kind=kind,
            info=tuple(sorted((k, repr(v)) for k, v in info.items())),
        ))

    def count(self, kind: str) -> int:
        """Number of trace events of one kind."""
        return sum(1 for ev in self.trace if ev.kind == kind)

    def signature(self) -> tuple:
        """Stable identity of the full fault trace (determinism gate)."""
        return tuple(ev.signature() for ev in self.trace)
