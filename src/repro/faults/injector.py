"""Seeded, trace-recorded fault injection for the simulated I/O stack.

The paper's evaluation covers only the happy path; real async-VOL
deployments must survive the unhappy ones — the staged data lives in
node memory until the background drain lands it on the PFS, and the
shared PFS is precisely the volatile component (Fig. 8).  This module
makes failure a first-class simulated event:

- :class:`FaultConfig` declares a *schedule* of injectable faults:
  PFS outage and degradation windows, per-op flaky write/read errors
  with configurable probability, per-node SSD failures, background
  worker stalls and crashes, and — at fleet scale — whole-node faults:
  explicit node crash times, drain windows, correlated cabinet
  failures, and a seeded rate-based crash schedule (exponential
  inter-failure times per node over a bounded horizon).
- :class:`FaultInjector` applies the schedule through hooks in
  :mod:`repro.platform.storage` (``fault_hook`` on the PFS and SSDs),
  :mod:`repro.platform.contention` (a shared fault-timeline recorder),
  :mod:`repro.hdf5.async_vol` (worker dispositions, retry jitter) and
  :mod:`repro.platform.cluster`'s node ledger (``fail_node`` /
  ``drain_node`` / ``revive_node``), whose ``on_node_down`` callbacks
  let the scheduler kill and requeue resident jobs.

Everything is deterministic per seed: the same ``(config, workload)``
pair produces an identical :attr:`FaultInjector.trace` on every run —
CI enforces this via :meth:`FaultInjector.signature`.  With no faults
configured, every hook is ``None`` and the simulation's event schedule
is untouched (the layer is zero-cost-off).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Generator, Optional

import numpy as np

from repro.faults.errors import (
    FlakyReadError,
    FlakyWriteError,
    PFSUnavailableError,
    SSDFaultError,
    TierDegradedError,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.platform.cluster import Cluster
    from repro.sim.engine import Engine

__all__ = [
    "FaultConfig",
    "FaultEvent",
    "FaultInjector",
    "OutageWindow",
    "SlowdownWindow",
]

#: Tag prefixes marking *reliable-path* storage requests (the sync
#: fallback ladder): the injector never fails these, mirroring a
#: blocking retry-until-success H5Dwrite.
RELIABLE_TAGS = ("fallback-w", "fallback-r")


@dataclass(frozen=True)
class OutageWindow:
    """The PFS rejects new requests during ``[start, start+duration)``."""

    start: float
    duration: float

    def __post_init__(self) -> None:
        if self.start < 0 or self.duration <= 0:
            raise ValueError(f"invalid outage window: {self}")

    @property
    def end(self) -> float:
        return self.start + self.duration

    def covers(self, t: float) -> bool:
        return self.start <= t < self.end


@dataclass(frozen=True)
class SlowdownWindow:
    """Shared storage runs at ``factor`` of capacity during the window
    (an overloaded or recovering PFS), composing multiplicatively with
    the contention model's availability."""

    start: float
    duration: float
    factor: float

    def __post_init__(self) -> None:
        if self.start < 0 or self.duration <= 0:
            raise ValueError(f"invalid slowdown window: {self}")
        if not 0.0 < self.factor < 1.0:
            raise ValueError(
                f"slowdown factor must be in (0,1), got {self.factor}"
            )

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass(frozen=True)
class FaultConfig:
    """Declarative, seed-deterministic schedule of injectable faults."""

    seed: int = 0
    #: Probability that one PFS write request errors (checked at issue).
    write_error_rate: float = 0.0
    #: Probability that one PFS read request errors.
    read_error_rate: float = 0.0
    #: Hard PFS outage windows (new requests raise, in-flight complete).
    pfs_outages: tuple[OutageWindow, ...] = ()
    #: Soft degradation windows (capacity scaled, nothing fails).
    pfs_slowdowns: tuple[SlowdownWindow, ...] = ()
    #: ``(node_index, at_time)``: the node's local SSD fails at ``at_time``.
    ssd_failures: tuple[tuple[int, float], ...] = ()
    #: ``(node_index, start, duration)``: the node's NVMe staging-cache
    #: tier is degraded (refuses new tier copies) during the window.
    #: The cache's planner falls back to the PFS — deadlines may be
    #: missed, data is never lost.
    tier_degraded: tuple[tuple[int, float, float], ...] = ()
    #: ``(rank, after_tasks)``: the rank's background worker crashes
    #: after executing ``after_tasks`` tasks.
    worker_crashes: tuple[tuple[int, int], ...] = ()
    #: ``(rank, at_task, seconds)``: the worker stalls before task
    #: number ``at_task`` (0-based) for ``seconds``.
    worker_stalls: tuple[tuple[int, int, float], ...] = ()
    #: ``(node_index, at_time)``: the node hard-crashes at ``at_time``
    #: — resident jobs die, the ledger marks the node ``DOWN``.
    node_crashes: tuple[tuple[int, float], ...] = ()
    #: ``(node_index, start, duration)``: a maintenance drain — the node
    #: stops taking new work at ``start`` (resident jobs finish
    #: unharmed) and revives at ``start + duration``.
    node_drains: tuple[tuple[int, float, float], ...] = ()
    #: ``(cabinet_index, at_time)``: correlated failure — every node in
    #: the cabinet (``cabinet_size`` consecutive indices) crashes
    #: together, the rack-level blast radius of a PDU/cooling fault.
    cabinet_crashes: tuple[tuple[int, float], ...] = ()
    #: Nodes per cabinet for ``cabinet_crashes``.
    cabinet_size: int = 4
    #: Mean seconds between crashes *per node* (exponential draws from
    #: the seeded node stream); 0 disables the rate-based schedule.
    node_mtbf: float = 0.0
    #: Rate-based crash times are drawn inside ``[0, fault_horizon)``
    #: only, so the schedule is finite and the drain bounded.
    fault_horizon: float = 0.0
    #: Seconds after a crash at which the node revives (0 = stays down
    #: for the rest of the run).
    node_repair_time: float = 0.0

    def __post_init__(self) -> None:
        for rate, label in ((self.write_error_rate, "write_error_rate"),
                            (self.read_error_rate, "read_error_rate")):
            if not 0.0 <= rate < 1.0:
                raise ValueError(f"{label} must be in [0,1), got {rate}")
        for node, at in self.ssd_failures:
            if node < 0 or at < 0:
                raise ValueError(f"invalid ssd failure ({node}, {at})")
        for node, start, duration in self.tier_degraded:
            if node < 0 or start < 0 or duration <= 0:
                raise ValueError(
                    f"invalid tier degradation ({node}, {start}, {duration})"
                )
        for rank, after in self.worker_crashes:
            if rank < 0 or after < 0:
                raise ValueError(f"invalid worker crash ({rank}, {after})")
        for rank, at_task, seconds in self.worker_stalls:
            if rank < 0 or at_task < 0 or seconds <= 0:
                raise ValueError(
                    f"invalid worker stall ({rank}, {at_task}, {seconds})"
                )
        for node, at in self.node_crashes:
            if node < 0 or at < 0:
                raise ValueError(f"invalid node crash ({node}, {at})")
        for node, start, duration in self.node_drains:
            if node < 0 or start < 0 or duration <= 0:
                raise ValueError(
                    f"invalid node drain ({node}, {start}, {duration})"
                )
        for cabinet, at in self.cabinet_crashes:
            if cabinet < 0 or at < 0:
                raise ValueError(f"invalid cabinet crash ({cabinet}, {at})")
        if self.cabinet_size < 1:
            raise ValueError(f"cabinet_size must be >= 1, got "
                             f"{self.cabinet_size}")
        if self.node_mtbf < 0 or self.fault_horizon < 0 \
                or self.node_repair_time < 0:
            raise ValueError("node_mtbf / fault_horizon / node_repair_time "
                             "must be non-negative")
        if self.node_mtbf > 0 and self.fault_horizon <= 0:
            raise ValueError(
                "rate-based node crashes (node_mtbf > 0) need a positive "
                "fault_horizon to bound the schedule"
            )

    @property
    def any_pfs_faults(self) -> bool:
        """Whether the PFS hook has anything to do at all."""
        return bool(self.write_error_rate or self.read_error_rate
                    or self.pfs_outages)

    @property
    def any_tier_faults(self) -> bool:
        """Whether any staging-cache tier degradation is scheduled."""
        return bool(self.tier_degraded)

    @property
    def any_node_faults(self) -> bool:
        """Whether any whole-node fault is scheduled."""
        return bool(self.node_crashes or self.node_drains
                    or self.cabinet_crashes
                    or (self.node_mtbf > 0 and self.fault_horizon > 0))


@dataclass(frozen=True)
class FaultEvent:
    """One entry of the injected-fault timeline."""

    t: float
    kind: str
    info: tuple[tuple[str, str], ...] = field(default_factory=tuple)

    def signature(self) -> tuple:
        """Hashable, repr-stable identity (CI determinism checks)."""
        return (round(self.t, 9), self.kind, self.info)


class FaultInjector:
    """Applies a :class:`FaultConfig` to one simulation, recording every
    injected fault into a deterministic trace."""

    def __init__(self, config: Optional[FaultConfig] = None):
        self.config = config if config is not None else FaultConfig()
        self.trace: list[FaultEvent] = []
        # Purpose-split RNG streams: per-op error draws, retry jitter
        # and node-failure times must not perturb each other's
        # sequences when one is unused.
        self._op_rng = np.random.default_rng((self.config.seed, 0xF1))
        self._retry_rng = np.random.default_rng((self.config.seed, 0xF2))
        self._node_rng = np.random.default_rng((self.config.seed, 0xF3))
        self.engine: Optional["Engine"] = None
        self.cluster: Optional["Cluster"] = None
        self._failed_ssds: set[int] = set()
        self._task_counts: dict[int, int] = {}
        self._crash_after = dict(self.config.worker_crashes)
        self._crashed_ranks: set[int] = set()
        self._stalls = {(rank, at): seconds
                        for rank, at, seconds in self.config.worker_stalls}
        self._tier_windows: dict[int, list[OutageWindow]] = {}
        for node, start, duration in self.config.tier_degraded:
            self._tier_windows.setdefault(node, []).append(
                OutageWindow(start=start, duration=duration)
            )

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, cluster: "Cluster") -> "FaultInjector":
        """Install hooks into ``cluster``'s storage layer and schedule
        the time-based fault windows.  Returns self for chaining."""
        if self.engine is not None:
            raise RuntimeError("FaultInjector already attached")
        self.engine = cluster.engine
        self.cluster = cluster
        if self.config.any_pfs_faults:
            cluster.pfs.fault_hook = self.pfs_hook
        for start_t, factor in self._slowdown_edges():
            self.engine.schedule(
                start_t - self.engine.now, self._apply_slowdown,
                cluster.pfs, factor,
            )
        for node_index, at in self.config.ssd_failures:
            if node_index < len(cluster.nodes):
                node = cluster.nodes[node_index]
                if node.spec.local_ssd is not None:
                    node.ssd.fault_hook = self.ssd_hook
                    self.engine.schedule(
                        at - self.engine.now, self._fail_ssd, node_index
                    )
        for node_index, windows in sorted(self._tier_windows.items()):
            for window in sorted(windows, key=lambda w: w.start):
                self.engine.schedule(
                    window.start - self.engine.now,
                    self._note_tier_edge, "tier_degraded", node_index,
                )
                self.engine.schedule(
                    window.end - self.engine.now,
                    self._note_tier_edge, "tier_restored", node_index,
                )
        if self.config.any_node_faults:
            for t, kind, node_index in self._node_fault_plan(
                    len(cluster.nodes)):
                self.engine.schedule(
                    max(0.0, t - self.engine.now),
                    self._apply_node_event, kind, node_index,
                )
        return self

    def _slowdown_edges(self) -> list[tuple[float, float]]:
        """(time, factor) capacity edges for the slowdown schedule."""
        edges = []
        for w in self.config.pfs_slowdowns:
            edges.append((w.start, w.factor))
            edges.append((w.end, 1.0))
        return sorted(edges)

    def _apply_slowdown(self, pfs, factor: float) -> None:
        pfs.set_fault_factor(factor)
        self.note("pfs_slowdown", factor=factor)

    def _fail_ssd(self, node_index: int) -> None:
        self._failed_ssds.add(node_index)
        self.note("ssd_failed", node=node_index)

    def _note_tier_edge(self, kind: str, node_index: int) -> None:
        self.note(kind, node=node_index)

    # ------------------------------------------------------------------
    # Node-level faults (fleet scale)
    # ------------------------------------------------------------------
    def _node_fault_plan(self, n_nodes: int) -> list[tuple[float, str, int]]:
        """The full ``(time, kind, node)`` node-fault schedule, sorted.

        Pure function of the config (and the seeded node RNG stream for
        the rate-based part, drawn in node-index order) — the plan is
        identical on every same-seed run, which is what the chaos
        determinism gate replays.  ``kind`` is ``"crash"``, ``"drain"``
        or ``"revive"``.
        """
        cfg = self.config
        events: list[tuple[float, str, int]] = []

        def crash(node: int, at: float) -> None:
            events.append((at, "crash", node))
            if cfg.node_repair_time > 0:
                events.append((at + cfg.node_repair_time, "revive", node))

        for node, at in cfg.node_crashes:
            if node < n_nodes:
                crash(node, at)
        for cabinet, at in cfg.cabinet_crashes:
            base = cabinet * cfg.cabinet_size
            for node in range(base, min(base + cfg.cabinet_size, n_nodes)):
                crash(node, at)
        for node, start, duration in cfg.node_drains:
            if node < n_nodes:
                events.append((start, "drain", node))
                events.append((start + duration, "revive", node))
        if cfg.node_mtbf > 0 and cfg.fault_horizon > 0:
            for node in range(n_nodes):
                t = 0.0
                while True:
                    t += float(self._node_rng.exponential(cfg.node_mtbf))
                    if t >= cfg.fault_horizon:
                        break
                    crash(node, t)
                    if cfg.node_repair_time <= 0:
                        break
                    t += cfg.node_repair_time
        # Deterministic total order; revives sort after crashes at the
        # same instant so an instant repair cannot resurrect a node
        # before its crash is applied.
        kind_order = {"crash": 0, "drain": 1, "revive": 2}
        events.sort(key=lambda e: (e[0], kind_order[e[1]], e[2]))
        return events

    def _apply_node_event(self, kind: str, node_index: int) -> None:
        """Drive one planned node event through the cluster ledger."""
        from repro.platform.cluster import NodeState

        cluster = self.cluster
        state = cluster.node_state(node_index)
        if kind == "crash":
            if state is NodeState.DOWN:
                return  # correlated schedules may double-hit a node
            owner = cluster.owner_of(node_index)
            self.note("node_crash", node=node_index, owner=owner)
            cluster.fail_node(node_index)
        elif kind == "drain":
            if state is not NodeState.UP:
                return
            self.note("node_drain", node=node_index)
            cluster.drain_node(node_index)
        else:  # revive
            if state is NodeState.UP:
                return
            self.note("node_revive", node=node_index)
            cluster.revive_node(node_index)

    # ------------------------------------------------------------------
    # Storage hooks (called from platform.storage at request issue)
    # ------------------------------------------------------------------
    def pfs_hook(self, op: str, node, target, nbytes: float, tag) -> None:
        """May raise a :class:`TransientIOError` for one PFS request."""
        if isinstance(tag, tuple) and tag and tag[0] in RELIABLE_TAGS:
            return
        now = self.engine.now
        window = self._outage_at(now)
        if window is not None:
            self.note("pfs_outage_hit", op=op, tag=tag, until=window.end)
            raise PFSUnavailableError(
                f"PFS outage until t={window.end:.6g} (op={op})",
                until=window.end,
            )
        rate = (self.config.write_error_rate if op == "write"
                else self.config.read_error_rate)
        if rate > 0.0 and self._op_rng.random() < rate:
            self.note("flaky_" + op, tag=tag, nbytes=nbytes)
            exc = FlakyWriteError if op == "write" else FlakyReadError
            raise exc(f"injected {op} error (tag={tag!r})")

    def ssd_hook(self, op: str, node_index: int, nbytes: float, tag) -> None:
        """May raise :class:`SSDFaultError` for one local-drive request."""
        if node_index in self._failed_ssds:
            self.note("ssd_fault_hit", op=op, node=node_index)
            raise SSDFaultError(f"node {node_index} local SSD failed")

    def tier_hook(self, node_index: int, nbytes: float, tag=None) -> None:
        """May raise :class:`TierDegradedError` for one tier copy.

        Called by the staging cache's copy engine before any NVMe-tier
        leg moves bytes, so a rejected copy is always bypass-safe: the
        block still exists on its source tier.
        """
        window = self._tier_window_at(node_index, self.engine.now)
        if window is not None:
            self.note("tier_degraded_hit", node=node_index, tag=tag,
                      until=window.end)
            raise TierDegradedError(
                f"node {node_index} cache tier degraded until "
                f"t={window.end:.6g}",
                until=window.end,
            )

    def tier_degraded_at(self, node_index: int,
                         t: Optional[float] = None) -> bool:
        """Whether ``node_index``'s NVMe tier is degraded at ``t``
        (default: now)."""
        when = self.engine.now if t is None else t
        return self._tier_window_at(node_index, when) is not None

    def _tier_window_at(self, node_index: int,
                        t: float) -> Optional[OutageWindow]:
        for window in self._tier_windows.get(node_index, ()):
            if window.covers(t):
                return window
        return None

    def _outage_at(self, t: float) -> Optional[OutageWindow]:
        for window in self.config.pfs_outages:
            if window.covers(t):
                return window
        return None

    def pfs_available(self, t: Optional[float] = None) -> bool:
        """Whether the PFS accepts new requests at ``t`` (default: now)."""
        return self._outage_at(self.engine.now if t is None else t) is None

    def outage_end(self, t: Optional[float] = None) -> Optional[float]:
        """End of the outage window covering ``t`` (None when PFS is up).

        The scheduler's degraded-mode admission uses this to defer
        placements to the window's edge instead of polling.
        """
        window = self._outage_at(self.engine.now if t is None else t)
        return None if window is None else window.end

    def when_pfs_available(self) -> Generator:
        """Process helper: block until outside every outage window (the
        reliable fallback path waits out a hard outage instead of
        failing)."""
        while True:
            window = self._outage_at(self.engine.now)
            if window is None:
                return
            yield self.engine.timeout(window.end - self.engine.now)

    # ------------------------------------------------------------------
    # Async-VOL hooks
    # ------------------------------------------------------------------
    def worker_disposition(self, rank: int) -> Optional[tuple[str, float]]:
        """Called by the background worker before each task.

        Returns ``None`` (proceed), ``("stall", seconds)`` (sleep, then
        proceed) or ``("crash", 0.0)`` (the worker dies now).  Task
        counting is per rank and monotonic, so a schedule like
        ``worker_crashes=((3, 2),)`` deterministically kills rank 3's
        worker after its second task regardless of interleaving.
        """
        count = self._task_counts.get(rank, 0)
        self._task_counts[rank] = count + 1
        after = self._crash_after.get(rank)
        if after is not None and count >= after and rank not in self._crashed_ranks:
            self._crashed_ranks.add(rank)
            self.note("worker_crash", rank=rank, task=count)
            return ("crash", 0.0)
        seconds = self._stalls.get((rank, count))
        if seconds is not None:
            self.note("worker_stall", rank=rank, task=count, seconds=seconds)
            return ("stall", seconds)
        return None

    def retry_jitter(self) -> float:
        """Multiplicative backoff jitter in [0.5, 1.5) — seeded, so the
        whole retry cascade replays identically per seed."""
        return 0.5 + float(self._retry_rng.random())

    # ------------------------------------------------------------------
    # Trace
    # ------------------------------------------------------------------
    def note(self, kind: str, t: Optional[float] = None, **info) -> None:
        """Append one event to the fault timeline.  Also used by the
        contention layer to interleave availability changes with faults
        on a single timeline."""
        if t is None:
            t = self.engine.now if self.engine is not None else 0.0
        self.trace.append(FaultEvent(
            t=t, kind=kind,
            info=tuple(sorted((k, repr(v)) for k, v in info.items())),
        ))

    def count(self, kind: str) -> int:
        """Number of trace events of one kind."""
        return sum(1 for ev in self.trace if ev.kind == kind)

    def signature(self) -> tuple:
        """Stable identity of the full fault trace (determinism gate)."""
        return tuple(ev.signature() for ev in self.trace)
