"""Named chaos scenarios: reusable :class:`FaultConfig` presets.

``repro list`` enumerates these, and the sweep engine's fault axis
builds its per-point configs through :func:`chaos_config`, so a "fault
rate" means the same thing in every chaos matrix: **expected node
crashes per node per 1000 simulated seconds**.  Every scenario is a
pure function of ``(seed, ...)`` — the injector's streams do the rest
of the determinism work.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.faults.injector import FaultConfig, OutageWindow

__all__ = ["SCENARIOS", "chaos_config", "scenario_config", "scenario_names"]


def chaos_config(
    rate: float,
    seed: int = 0,
    horizon: float = 600.0,
    repair: float = 60.0,
) -> Optional[FaultConfig]:
    """The sweep engine's fault axis: rate-based node crashes.

    ``rate`` is the expected number of crashes per node per 1000
    simulated seconds (so ``node_mtbf = 1000 / rate``); crash times are
    drawn inside ``[0, horizon)`` and crashed nodes revive after
    ``repair`` seconds.  ``rate <= 0`` returns ``None`` — the
    zero-cost-off path, no injector at all.
    """
    if rate <= 0.0:
        return None
    if rate < 0 or horizon <= 0 or repair < 0:
        raise ValueError(f"invalid chaos axis ({rate}, {horizon}, {repair})")
    return FaultConfig(
        seed=seed, node_mtbf=1000.0 / rate, fault_horizon=horizon,
        node_repair_time=repair,
    )


def _node_crash(seed: int) -> FaultConfig:
    return FaultConfig(seed=seed, node_crashes=((0, 40.0),),
                       node_repair_time=120.0)


def _node_drain(seed: int) -> FaultConfig:
    return FaultConfig(seed=seed, node_drains=((0, 30.0, 90.0),))


def _cabinet_outage(seed: int) -> FaultConfig:
    return FaultConfig(seed=seed, cabinet_crashes=((0, 50.0),),
                       cabinet_size=4, node_repair_time=180.0)


def _node_churn(seed: int) -> FaultConfig:
    return FaultConfig(seed=seed, node_mtbf=400.0, fault_horizon=600.0,
                       node_repair_time=60.0)


def _pfs_outage(seed: int) -> FaultConfig:
    return FaultConfig(seed=seed,
                       pfs_outages=(OutageWindow(start=30.0, duration=45.0),))


def _flaky_writes(seed: int) -> FaultConfig:
    return FaultConfig(seed=seed, write_error_rate=0.05)


def _ssd_failure(seed: int) -> FaultConfig:
    return FaultConfig(seed=seed, ssd_failures=((0, 20.0),))


def _tier_degraded(seed: int) -> FaultConfig:
    return FaultConfig(seed=seed, tier_degraded=((0, 20.0, 60.0),))


#: name -> (description, FaultConfig factory taking a seed).
SCENARIOS: dict[str, tuple[str, Callable[[int], FaultConfig]]] = {
    "node-crash": (
        "one node hard-crashes at t=40s, repaired after 120s",
        _node_crash,
    ),
    "node-drain": (
        "one node drains for maintenance during [30s, 120s)",
        _node_drain,
    ),
    "cabinet-outage": (
        "a 4-node cabinet loses power at t=50s, repaired after 180s",
        _cabinet_outage,
    ),
    "node-churn": (
        "rate-based seeded crashes (MTBF 400s/node over 600s, 60s repair)",
        _node_churn,
    ),
    "pfs-outage": (
        "the shared PFS rejects requests during [30s, 75s)",
        _pfs_outage,
    ),
    "flaky-writes": (
        "5% of PFS write requests error (retry/fallback ladder territory)",
        _flaky_writes,
    ),
    "ssd-failure": (
        "node 0's staging SSD fails at t=20s",
        _ssd_failure,
    ),
    "tier-degraded": (
        "node 0's NVMe cache tier is degraded during [20s, 80s); the "
        "staging cache serves from the PFS (deadlines slip, no data loss)",
        _tier_degraded,
    ),
}


def scenario_names() -> list[str]:
    """Registered scenario names, sorted."""
    return sorted(SCENARIOS)


def scenario_config(name: str, seed: int = 0) -> FaultConfig:
    """Build one named scenario's config at ``seed``."""
    if name not in SCENARIOS:
        raise ValueError(
            f"unknown fault scenario {name!r}; choose from {scenario_names()}"
        )
    return SCENARIOS[name][1](seed)
