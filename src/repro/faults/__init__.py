"""Fault injection and failure semantics for the simulated I/O stack.

See :mod:`repro.faults.injector` for the chaos layer and
:mod:`repro.faults.errors` for the typed failure taxonomy.  The async
VOL's recovery machinery (bounded retry with backoff, sync fallback) is
in :mod:`repro.hdf5.async_vol`; the checkpoint-restart-under-failure
experiment lives in :mod:`repro.harness.recovery`.
"""

from repro.faults.errors import (
    CacheAdmissionError,
    FaultError,
    FlakyReadError,
    FlakyWriteError,
    NodeFailureError,
    PFSUnavailableError,
    RetryExhaustedError,
    SSDFaultError,
    StagingTimeoutError,
    TierDegradedError,
    TransientIOError,
    WorkerCrashError,
    WorkerStallError,
)
from repro.faults.injector import (
    FaultConfig,
    FaultEvent,
    FaultInjector,
    OutageWindow,
    SlowdownWindow,
)
from repro.faults.scenarios import (
    SCENARIOS,
    chaos_config,
    scenario_config,
    scenario_names,
)

__all__ = [
    "CacheAdmissionError",
    "FaultConfig",
    "FaultError",
    "FaultEvent",
    "FaultInjector",
    "FlakyReadError",
    "FlakyWriteError",
    "NodeFailureError",
    "OutageWindow",
    "PFSUnavailableError",
    "RetryExhaustedError",
    "SCENARIOS",
    "SSDFaultError",
    "SlowdownWindow",
    "StagingTimeoutError",
    "TierDegradedError",
    "TransientIOError",
    "WorkerCrashError",
    "WorkerStallError",
    "chaos_config",
    "scenario_config",
    "scenario_names",
]
