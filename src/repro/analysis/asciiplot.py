"""Terminal rendering of figure series (log-scale, like the paper's plots).

The paper's evaluation figures are log-scale bandwidth-vs-ranks plots;
:func:`render_series` draws the same data as an ASCII chart so sweep
results can be eyeballed without a plotting stack:

::

    GB/s (log)
    1.2e+04 |                                          d
    3.4e+03 |                          d
    1.0e+03 |              d        s       s        s
    ...
            +----------------------------------------------
              96        192       384       768      1536

Each series gets a one-character marker; points that would overlap
show the later series' marker.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Mapping, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - avoid harness<->analysis cycle
    from repro.harness.report import FigureData

__all__ = ["render_figure", "render_series"]


def render_series(
    x: Sequence[float],
    series: Mapping[str, Sequence[float]],
    height: int = 12,
    width: Optional[int] = None,
    logy: bool = True,
    ylabel: str = "",
) -> str:
    """Render named series over shared x positions as an ASCII chart.

    ``series`` maps a label to y-values (same length as ``x``); the
    first character of each label is its plot marker.  Non-positive
    values are skipped in log mode.
    """
    if height < 2:
        raise ValueError(f"height must be >= 2, got {height}")
    if not series:
        raise ValueError("no series to plot")
    n = len(x)
    for label, ys in series.items():
        if len(ys) != n:
            raise ValueError(
                f"series {label!r} has {len(ys)} points for {n} x values"
            )

    values = [
        y for ys in series.values() for y in ys
        if not logy or (y is not None and y > 0)
    ]
    if not values:
        raise ValueError("no plottable values")
    lo, hi = min(values), max(values)
    if logy:
        lo_t, hi_t = math.log10(lo), math.log10(hi)
    else:
        lo_t, hi_t = lo, hi
    if hi_t == lo_t:
        hi_t = lo_t + 1.0

    width = width or max(6 * n, 24)
    col_of = lambda i: int((i + 0.5) * width / n)

    def row_of(y: float) -> Optional[int]:
        if logy and y <= 0:
            return None
        t = math.log10(y) if logy else y
        frac = (t - lo_t) / (hi_t - lo_t)
        return min(height - 1, max(0, round(frac * (height - 1))))

    grid = [[" "] * width for _ in range(height)]
    for label, ys in series.items():
        marker = label[0]
        for i, y in enumerate(ys):
            r = row_of(y)
            if r is not None:
                grid[height - 1 - r][col_of(i)] = marker

    # y-axis tick labels: top, middle, bottom.
    def tick(frac: float) -> str:
        t = lo_t + frac * (hi_t - lo_t)
        v = 10**t if logy else t
        return f"{v:.3g}"

    labels = {0: tick(1.0), height // 2: tick(0.5), height - 1: tick(0.0)}
    label_w = max(len(s) for s in labels.values())
    lines = []
    if ylabel:
        lines.append(f"{ylabel}{' (log)' if logy else ''}")
    for r, row in enumerate(grid):
        prefix = labels.get(r, "").rjust(label_w)
        lines.append(f"{prefix} |{''.join(row)}")
    lines.append(" " * label_w + " +" + "-" * width)
    xaxis = [" "] * width
    for i, xv in enumerate(x):
        text = f"{xv:g}"
        start = min(max(0, col_of(i) - len(text) // 2), width - len(text))
        for j, ch in enumerate(text):
            xaxis[start + j] = ch
    lines.append(" " * label_w + "  " + "".join(xaxis))
    legend = "   ".join(f"{label[0]}={label}" for label in series)
    lines.append(" " * label_w + "  " + legend)
    return "\n".join(lines)


def render_figure(
    fig: "FigureData",
    x_column: Optional[str] = None,
    y_columns: Optional[Sequence[str]] = None,
    height: int = 12,
    logy: bool = True,
) -> str:
    """Render a :class:`FigureData` as title + ASCII chart.

    Defaults: the first column is x; every numeric "measured" column
    (those not starting with ``est``) is a series.
    """
    x_col = x_column or fig.columns[0]
    if y_columns is None:
        y_columns = [
            c for c in fig.columns[1:]
            if not c.startswith("est")
            and all(isinstance(v, (int, float)) for v in fig.column(c))
        ]
    if not y_columns:
        raise ValueError("no numeric series columns found")
    chart = render_series(
        fig.column(x_col),
        {c: fig.column(c) for c in y_columns},
        height=height,
        logy=logy,
        ylabel="",
    )
    return f"== {fig.name}: {fig.title} ==\n{chart}"
