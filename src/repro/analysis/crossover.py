"""Crossover analysis: where does asynchronous I/O start to pay off?

The paper's takeaway for practitioners is a decision: given a machine
and workload, at what scale (or compute-phase length) does asynchronous
I/O beat synchronous I/O?  This module answers both questions from
fitted models, giving the "when should I flip the switch" numbers the
adaptive interface acts on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.model.epoch import EpochCosts, async_epoch_time, sync_epoch_time

__all__ = ["ScaleCrossover", "compute_crossover_scale", "min_compute_to_benefit"]


@dataclass(frozen=True)
class ScaleCrossover:
    """Result of a scale-crossover search."""

    nranks: Optional[int]  # smallest swept scale where async wins (None: never)
    speedups: dict[int, float]  # nranks -> predicted sync/async epoch ratio


def compute_crossover_scale(
    scales,
    phase_bytes_of,
    sync_rate_of,
    async_rate_of,
    t_comp: float,
    threshold: float = 1.0,
) -> ScaleCrossover:
    """Smallest scale at which async is predicted ``threshold×`` faster.

    Parameters are callables over the rank count — ``phase_bytes_of(n)``
    (aggregate bytes per I/O phase), ``sync_rate_of(n)`` /
    ``async_rate_of(n)`` (fitted aggregate rates; the async rate is the
    transactional-overhead rate, per the paper's measurement
    convention).
    """
    if threshold <= 0:
        raise ValueError(f"threshold must be positive, got {threshold}")
    speedups: dict[int, float] = {}
    crossover: Optional[int] = None
    for nranks in sorted(scales):
        nbytes = phase_bytes_of(nranks)
        costs = EpochCosts(
            t_comp=t_comp,
            t_io=nbytes / sync_rate_of(nranks),
            t_transact=nbytes / async_rate_of(nranks),
        )
        ratio = sync_epoch_time(costs) / async_epoch_time(costs)
        speedups[nranks] = ratio
        if crossover is None and ratio > threshold:
            crossover = nranks
    return ScaleCrossover(nranks=crossover, speedups=speedups)


def min_compute_to_benefit(t_io: float, t_transact: float) -> float:
    """Shortest computation phase for which async beats sync (Eq. 2).

    Solving ``max(c, t_io - c) + t_tr < t_io + c``:

    - if ``c >= t_io`` (full overlap): async wins iff ``t_tr < t_io``;
    - else (partial overlap): async wins iff ``c > t_tr / 2``.

    Returns ``inf`` when no computation length helps
    (``t_transact >= t_io`` *and* the overhead can't amortize).
    """
    if t_io < 0 or t_transact < 0:
        raise ValueError("times must be non-negative")
    if t_transact >= t_io:
        # even full overlap only replaces t_io with t_transact
        return math.inf
    return t_transact / 2.0
