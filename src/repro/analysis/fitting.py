"""Fit the paper's Eq. 4 rate model to sweep measurements.

For each I/O mode, the sweep's (per-phase data size, #ranks, peak
aggregate rate) points populate a
:class:`~repro.model.history.MeasurementHistory`; the
:class:`~repro.model.estimators.IORateModel` then selects linear vs
linear-log features by r² and predicts the rate at every scale — the
dotted estimated-performance lines of Figs. 3-6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.model.estimators import IORateModel
from repro.model.history import MeasurementHistory

if TYPE_CHECKING:  # pragma: no cover - avoid harness<->analysis cycle
    from repro.harness.sweep import SweepPoint

__all__ = ["FittedSeries", "fit_sweep_points"]


@dataclass(frozen=True)
class FittedSeries:
    """One mode's fitted rate model over a sweep."""

    mode: str
    transform: str  # 'linear' | 'linear-log'
    r2: float
    #: nranks -> estimated aggregate rate (bytes/second)
    estimates: dict[int, float]

    def estimate_gbs(self, nranks: int) -> float:
        """Estimated rate at ``nranks`` in GB/s."""
        return self.estimates[nranks] / 1e9


def fit_sweep_points(points: Sequence["SweepPoint"], mode: str) -> FittedSeries:
    """Fit Eq. 4 over one mode's sweep points and predict every scale.

    Each sweep point contributes every per-day peak observation (the
    paper fits over the history of all runs, not the reduced best).
    """
    mine = [p for p in points if p.mode == mode]
    if len(mine) < 2:
        raise ValueError(f"need >= 2 sweep points for mode {mode!r}")
    history = MeasurementHistory()
    for p in mine:
        phase_bytes = p.total_bytes / p.n_phases
        for peak in p.all_peaks:
            history.record(phase_bytes, p.nranks, peak, mode=mode)
    model = IORateModel(history, mode=mode, min_samples=2).refit()
    estimates = {
        p.nranks: model.estimate_rate(p.total_bytes / p.n_phases, p.nranks)
        for p in mine
    }
    return FittedSeries(
        mode=mode, transform=model.transform, r2=model.r2, estimates=estimates
    )
