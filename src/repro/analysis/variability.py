"""Run-to-run variability statistics (Fig. 8 / §V-C).

"A benefit of asynchronous I/O is to hide the system-level variability,
leading to consistent aggregate I/O bandwidth independent of the full
system-level contention."  We quantify this with the coefficient of
variation of per-day peak bandwidths: async CV ≪ sync CV.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

__all__ = ["VariabilityStats", "variability_stats"]


@dataclass(frozen=True)
class VariabilityStats:
    """Spread of one mode's per-run bandwidth observations."""

    n_runs: int
    mean: float
    std: float
    min: float
    max: float

    @property
    def cv(self) -> float:
        """Coefficient of variation (std/mean); 0 for perfectly stable."""
        if self.mean == 0.0:
            return 0.0
        return self.std / self.mean

    @property
    def spread_ratio(self) -> float:
        """max/min — the visual band width on a Fig. 8-style plot."""
        if self.min == 0.0:
            return math.inf
        return self.max / self.min


def variability_stats(observations: Sequence[float]) -> VariabilityStats:
    """Summarize per-run bandwidth observations."""
    obs = [float(x) for x in observations]
    if not obs:
        raise ValueError("no observations")
    n = len(obs)
    mean = sum(obs) / n
    var = sum((x - mean) ** 2 for x in obs) / n
    return VariabilityStats(
        n_runs=n, mean=mean, std=math.sqrt(var), min=min(obs), max=max(obs)
    )
