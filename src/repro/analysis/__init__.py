"""Analysis of sweep results: model fitting and variability statistics.

Produces the paper's "estimated performance ... shown as a dotted line"
series (regression over the measured sweep, §V) and the run-to-run
variability summaries of Fig. 8 / §V-C.
"""

from repro.analysis.asciiplot import render_figure, render_series
from repro.analysis.crossover import (
    ScaleCrossover,
    compute_crossover_scale,
    min_compute_to_benefit,
)
from repro.analysis.fitting import FittedSeries, fit_sweep_points
from repro.analysis.variability import VariabilityStats, variability_stats

__all__ = [
    "FittedSeries",
    "ScaleCrossover",
    "compute_crossover_scale",
    "min_compute_to_benefit",
    "VariabilityStats",
    "fit_sweep_points",
    "render_figure",
    "render_series",
    "variability_stats",
]
