"""Mini AMReX substrate: block-structured meshes, multifabs, particles.

Nyx and Castro "use the AMReX framework for computation and performing
I/O" (§IV-C).  This module provides the minimal AMReX machinery their
I/O paths need:

- :class:`Box` — a rectangular index-space region,
- :class:`BoxArray` — a domain chopped into grids of at most
  ``max_grid_size`` cells per side, with round-robin rank distribution,
- :class:`MultiFab` — multi-component cell data over a BoxArray,
- :class:`ParticleContainer` — particles-per-cell data (Castro),
- :func:`write_plotfile` — the HDF5 plotfile dump: one flattened 1-D
  dataset per multifab at each plot step, each rank writing the
  contiguous span holding its boxes' cells (the AMReX HDF5 writer's
  layout).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional, Sequence

from repro.hdf5 import FLOAT64, EventSet, Hyperslab
from repro.hdf5.objects import File

__all__ = [
    "AMRHierarchy",
    "Box",
    "BoxArray",
    "MultiFab",
    "ParticleContainer",
    "write_plotfile",
]


@dataclass(frozen=True)
class Box:
    """Cell-centered index-space box ``[lo, hi]`` (inclusive)."""

    lo: tuple[int, int, int]
    hi: tuple[int, int, int]

    def __post_init__(self) -> None:
        if any(h < l for l, h in zip(self.lo, self.hi)):
            raise ValueError(f"empty box: lo={self.lo} hi={self.hi}")

    @property
    def ncells(self) -> int:
        """Number of cells in the box."""
        n = 1
        for l, h in zip(self.lo, self.hi):
            n *= h - l + 1
        return n


class BoxArray:
    """A 3-D domain decomposed into grids of ``max_grid_size`` per side."""

    def __init__(self, domain: tuple[int, int, int], max_grid_size: int):
        if any(d < 1 for d in domain):
            raise ValueError(f"invalid domain {domain}")
        if max_grid_size < 1:
            raise ValueError(f"invalid max_grid_size {max_grid_size}")
        self.domain = tuple(int(d) for d in domain)
        self.max_grid_size = max_grid_size
        self._cells_cache: dict[int, list[int]] = {}
        self._prefix_cache: dict[int, list[int]] = {}
        self._ncells: Optional[int] = None
        self.boxes: list[Box] = []
        nx, ny, nz = self.domain
        m = max_grid_size
        for z0 in range(0, nz, m):
            for y0 in range(0, ny, m):
                for x0 in range(0, nx, m):
                    self.boxes.append(Box(
                        lo=(x0, y0, z0),
                        hi=(min(x0 + m, nx) - 1, min(y0 + m, ny) - 1,
                            min(z0 + m, nz) - 1),
                    ))

    def __len__(self) -> int:
        return len(self.boxes)

    @property
    def ncells(self) -> int:
        """Total cells over all boxes (== domain volume)."""
        if self._ncells is None:
            self._ncells = sum(b.ncells for b in self.boxes)
        return self._ncells

    def distribute(self, nranks: int) -> list[list[int]]:
        """Round-robin box→rank map: list of box indices per rank."""
        if nranks < 1:
            raise ValueError(f"nranks must be >= 1, got {nranks}")
        owned: list[list[int]] = [[] for _ in range(nranks)]
        for i in range(len(self.boxes)):
            owned[i % nranks].append(i)
        return owned

    def cells_per_rank(self, nranks: int) -> list[int]:
        """Cells owned by each rank (round-robin), cached per ``nranks``."""
        if nranks < 1:
            raise ValueError(f"nranks must be >= 1, got {nranks}")
        cached = self._cells_cache.get(nranks)
        if cached is None:
            cached = [0] * nranks
            for i, box in enumerate(self.boxes):
                cached[i % nranks] += box.ncells
            self._cells_cache[nranks] = cached
        return cached

    def cells_of_rank(self, rank: int, nranks: int) -> int:
        """Cells owned by ``rank`` under round-robin distribution."""
        return self.cells_per_rank(nranks)[rank]

    def cells_prefix(self, nranks: int) -> list[int]:
        """Exclusive prefix sums of :meth:`cells_per_rank` (cached)."""
        cached = self._prefix_cache.get(nranks)
        if cached is None:
            cells = self.cells_per_rank(nranks)
            cached = [0] * nranks
            for r in range(1, nranks):
                cached[r] = cached[r - 1] + cells[r - 1]
            self._prefix_cache[nranks] = cached
        return cached


class MultiFab:
    """Multi-component double-precision data over a BoxArray."""

    def __init__(self, boxarray: BoxArray, ncomp: int, name: str = "mf"):
        if ncomp < 1:
            raise ValueError(f"ncomp must be >= 1, got {ncomp}")
        self.boxarray = boxarray
        self.ncomp = ncomp
        self.name = name

    def bytes_of_rank(self, rank: int, nranks: int) -> int:
        """Plotfile bytes contributed by ``rank``."""
        return (self.boxarray.cells_of_rank(rank, nranks)
                * self.ncomp * FLOAT64.itemsize)

    @property
    def total_bytes(self) -> int:
        """Whole multifab size on disk."""
        return self.boxarray.ncells * self.ncomp * FLOAT64.itemsize


class ParticleContainer:
    """Particles at fixed density over a BoxArray (Castro: 2/cell)."""

    def __init__(self, boxarray: BoxArray, particles_per_cell: int,
                 reals_per_particle: int = 4, name: str = "particles"):
        if particles_per_cell < 0 or reals_per_particle < 1:
            raise ValueError("invalid particle container parameters")
        self.boxarray = boxarray
        self.particles_per_cell = particles_per_cell
        self.reals_per_particle = reals_per_particle
        self.name = name

    def bytes_of_rank(self, rank: int, nranks: int) -> int:
        """Checkpoint bytes contributed by ``rank``."""
        return (self.boxarray.cells_of_rank(rank, nranks)
                * self.particles_per_cell * self.reals_per_particle
                * FLOAT64.itemsize)

    @property
    def total_bytes(self) -> int:
        """Whole container size on disk."""
        return (self.boxarray.ncells * self.particles_per_cell
                * self.reals_per_particle * FLOAT64.itemsize)


class AMRHierarchy:
    """A block-structured AMR level hierarchy.

    Level 0 covers the whole domain; each finer level refines a
    ``coverage`` fraction of the previous one by ``ref_ratio`` per side
    (AMReX defaults to 2).  Cell counts therefore grow by
    ``coverage * ref_ratio**3`` per level — the reason AMR plotfiles are
    often dominated by their finest levels.
    """

    def __init__(self, domain: tuple[int, int, int], max_grid_size: int,
                 levels: int = 1, ref_ratio: int = 2,
                 coverage: float = 0.25):
        if levels < 1:
            raise ValueError(f"levels must be >= 1, got {levels}")
        if ref_ratio < 2:
            raise ValueError(f"ref_ratio must be >= 2, got {ref_ratio}")
        if not 0.0 < coverage <= 1.0:
            raise ValueError(f"coverage must be in (0,1], got {coverage}")
        self.ref_ratio = ref_ratio
        self.coverage = coverage
        self.levels: list[BoxArray] = []
        extent = tuple(domain)
        for level in range(levels):
            if level > 0:
                # refine a sub-box covering ``coverage`` of the volume
                frac = coverage ** (1.0 / 3.0)
                extent = tuple(
                    max(1, int(d * frac)) * ref_ratio for d in extent
                )
            self.levels.append(BoxArray(extent, max_grid_size))

    def __len__(self) -> int:
        return len(self.levels)

    @property
    def total_cells(self) -> int:
        """Cells across all levels."""
        return sum(ba.ncells for ba in self.levels)

    def multifabs(self, ncomp: int, name: str = "state") -> list[MultiFab]:
        """One multifab per level (plotfiles store levels separately)."""
        return [
            MultiFab(ba, ncomp=ncomp, name=f"{name}_lev{i}")
            for i, ba in enumerate(self.levels)
        ]


def _rank_span(start: int, count: int) -> Hyperslab:
    """Contiguous 1-D span ``[start, start+count)``."""
    return Hyperslab(start=(start,), count=(count,))


def write_plotfile(ctx, f: File, step: int, multifabs: Sequence[MultiFab],
                   particles: Optional[ParticleContainer] = None,
                   es: Optional[EventSet] = None, phase: Optional[int] = None,
                   from_gpu: bool = False, pinned: bool = True) -> Generator:
    """Dump one plotfile: a dataset per multifab (+ particles) under
    ``/plt{step}``, each rank writing its contiguous cell span.

    ``from_gpu`` adds the device→host transfer to each write (GPU-
    resident state, e.g. Nyx's GPU configuration)."""
    nranks = ctx.size
    group = f.create_group(f"plt{step:05d}")
    phase = step if phase is None else phase
    for mf in multifabs:
        ba = mf.boxarray
        my_count = ba.cells_of_rank(ctx.rank, nranks) * mf.ncomp
        my_start = ba.cells_prefix(nranks)[ctx.rank] * mf.ncomp
        dset = group.create_dataset(mf.name, shape=(ba.ncells * mf.ncomp,),
                                    dtype=FLOAT64)
        if my_count:
            yield from dset.write(_rank_span(my_start, my_count), phase=phase,
                                  es=es, from_gpu=from_gpu, pinned=pinned)
    if particles is not None and particles.particles_per_cell > 0:
        ba = particles.boxarray
        per_cell = particles.particles_per_cell * particles.reals_per_particle
        my_count = ba.cells_of_rank(ctx.rank, nranks) * per_cell
        my_start = ba.cells_prefix(nranks)[ctx.rank] * per_cell
        dset = group.create_dataset(particles.name,
                                    shape=(ba.ncells * per_cell,),
                                    dtype=FLOAT64)
        if my_count:
            yield from dset.write(_rank_span(my_start, my_count), phase=phase,
                                  es=es, from_gpu=from_gpu, pinned=pinned)
