"""Castro: compressible astrophysics code on AMReX (paper §IV-C, Fig. 4c/4d).

"We run the Castro simulation at 128x128x128 dimensions with 6
components in each multifab and 2 particles per cell."  The dataset
stays fixed while MPI ranks scale (strong scaling): "the amount of
data each rank processes and writes decreases proportionally".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from repro.hdf5 import EventSet, H5Library
from repro.hdf5.vol import VOLConnector
from repro.workloads.amrex import BoxArray, MultiFab, ParticleContainer, write_plotfile

__all__ = ["CastroConfig", "castro_program"]


@dataclass(frozen=True)
class CastroConfig:
    """Castro run parameters (paper defaults)."""

    dim: int = 128
    max_grid_size: int = 8  # 4096 grids: enough parallelism for the sweeps
    ncomp: int = 6  # "6 components in each multifab"
    n_multifabs: int = 2  # hydro state + radiation/MHD auxiliaries
    particles_per_cell: int = 2
    reals_per_particle: int = 4
    plot_int: int = 10
    n_plotfiles: int = 3
    seconds_per_step: float = 1.0
    path: str = "/castro_plt.h5"

    def __post_init__(self) -> None:
        if self.dim < 1 or self.max_grid_size < 1:
            raise ValueError(f"invalid Castro dims: {self}")
        if self.ncomp < 1 or self.n_multifabs < 1:
            raise ValueError(f"invalid Castro multifab config: {self}")
        if self.plot_int < 1 or self.n_plotfiles < 1:
            raise ValueError(f"invalid Castro I/O frequency: {self}")
        if self.seconds_per_step < 0 or self.particles_per_cell < 0:
            raise ValueError(f"invalid Castro parameters: {self}")

    def boxarray(self) -> BoxArray:
        """The mesh decomposition."""
        return BoxArray((self.dim,) * 3, self.max_grid_size)

    def compute_phase_seconds(self) -> float:
        """Duration of one computation phase."""
        return self.plot_int * self.seconds_per_step

    def plotfile_bytes(self) -> int:
        """Bytes of one plotfile: multifabs + particle container."""
        cells = self.dim**3
        mf = cells * self.ncomp * 8 * self.n_multifabs
        particles = cells * self.particles_per_cell * self.reals_per_particle * 8
        return mf + particles


def castro_program(lib: H5Library, vol: VOLConnector, config: CastroConfig):
    """Per-rank coroutine: compute steps then a plotfile with particles."""
    boxarray = config.boxarray()
    multifabs = [
        MultiFab(boxarray, ncomp=config.ncomp, name=f"mf{i}")
        for i in range(config.n_multifabs)
    ]
    particles = ParticleContainer(
        boxarray,
        particles_per_cell=config.particles_per_cell,
        reals_per_particle=config.reals_per_particle,
    )

    def program(ctx) -> Generator:
        f = yield from lib.create(ctx, config.path, vol)
        es = EventSet(ctx.engine, name=f"castro.r{ctx.rank}")
        for plot in range(config.n_plotfiles):
            yield ctx.compute(config.compute_phase_seconds())
            yield from ctx.barrier()  # AMR time steps are bulk-synchronous
            yield from write_plotfile(
                ctx, f, step=(plot + 1) * config.plot_int,
                multifabs=multifabs, particles=particles, es=es, phase=plot,
            )
        yield from es.wait()
        yield from f.close()
        yield from vol.finalize(ctx)
        return ctx.now

    return program
