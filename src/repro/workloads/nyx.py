"""Nyx: AMR cosmology simulation (paper §IV-C, Fig. 4a/4b, Fig. 7).

"Nyx outputs a single plotfile in the HDF5 format containing
information for visualizations.  We run two configurations: small
(256³, plotfile every 20 time steps) and large (2048³, plotfile every
50 time steps)."  The dataset size is fixed while MPI ranks scale
(strong scaling).  Fig. 7 varies the number of time steps per
computation phase from 1 to 192.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Generator

from repro.hdf5 import EventSet, H5Library
from repro.hdf5.vol import VOLConnector
from repro.workloads.amrex import AMRHierarchy, BoxArray, MultiFab, write_plotfile

__all__ = ["NyxConfig", "nyx_program"]


@dataclass(frozen=True)
class NyxConfig:
    """Nyx run parameters.

    ``plot_int`` is the I/O frequency in time steps;
    ``seconds_per_step`` the computation cost of one time step, so a
    computation phase lasts ``plot_int * seconds_per_step``.
    """

    dim: int = 256
    max_grid_size: int = 32
    ncomp: int = 10  # baryon state + derived fields in the plotfile
    plot_int: int = 20
    n_plotfiles: int = 3
    seconds_per_step: float = 0.5
    path: str = "/nyx_plt.h5"
    #: "Since Nyx has an option to use GPUs" (§V-A.3): state lives in
    #: device memory, so every write first pays a device→host transfer
    #: (blocking for sync I/O; the transactional copy for async).
    use_gpu: bool = False
    pinned_host_memory: bool = True
    #: AMR levels in the plotfile ("massively parallel, adaptive mesh");
    #: 1 reproduces the paper's single-level I/O sizes, more levels add
    #: one dataset per level with refined sub-domains.
    amr_levels: int = 1
    amr_coverage: float = 0.25

    def __post_init__(self) -> None:
        if self.dim < 1 or self.max_grid_size < 1:
            raise ValueError(f"invalid Nyx dims: {self}")
        if self.plot_int < 1 or self.n_plotfiles < 1:
            raise ValueError(f"invalid Nyx I/O frequency: {self}")
        if self.seconds_per_step < 0:
            raise ValueError("seconds_per_step must be non-negative")
        if self.amr_levels < 1:
            raise ValueError("amr_levels must be >= 1")

    @classmethod
    def small(cls, **overrides) -> "NyxConfig":
        """The paper's small configuration: 256³, plotfile / 20 steps."""
        return replace(cls(dim=256, plot_int=20, max_grid_size=16), **overrides)

    @classmethod
    def large(cls, **overrides) -> "NyxConfig":
        """The paper's large configuration: 2048³, plotfile / 50 steps."""
        return replace(cls(dim=2048, plot_int=50, max_grid_size=128), **overrides)

    def boxarray(self) -> BoxArray:
        """The (single-level) mesh decomposition."""
        return BoxArray((self.dim,) * 3, self.max_grid_size)

    def compute_phase_seconds(self) -> float:
        """Duration of one computation phase."""
        return self.plot_int * self.seconds_per_step

    def plotfile_bytes(self) -> int:
        """Bytes of one plotfile (fixed — strong scaling)."""
        return self.dim**3 * self.ncomp * 8


def nyx_program(lib: H5Library, vol: VOLConnector, config: NyxConfig):
    """Per-rank coroutine: ``plot_int`` compute steps, then a plotfile."""
    hierarchy = AMRHierarchy(
        (config.dim,) * 3, config.max_grid_size,
        levels=config.amr_levels, coverage=config.amr_coverage,
    )
    multifabs = hierarchy.multifabs(config.ncomp, name="state")

    def program(ctx) -> Generator:
        f = yield from lib.create(ctx, config.path, vol)
        es = EventSet(ctx.engine, name=f"nyx.r{ctx.rank}")
        for plot in range(config.n_plotfiles):
            yield ctx.compute(config.compute_phase_seconds())
            yield from ctx.barrier()  # AMR time steps are bulk-synchronous
            yield from write_plotfile(
                ctx, f, step=(plot + 1) * config.plot_int,
                multifabs=multifabs, es=es, phase=plot,
                from_gpu=config.use_gpu, pinned=config.pinned_host_memory,
            )
        yield from es.wait()
        yield from f.close()
        yield from vol.finalize(ctx)
        return ctx.now

    return program
