"""VPIC-IO: particle-write kernel from the VPIC plasma-physics code.

Paper §IV-B: "The kernel emulates writing particle data, where each
particle has 8 properties and each MPI process writes (8x1024x1024)
particles (≈32 MB).  The number of particles increases with the number
of MPI processes (weak scaling).  Each property of the particles is
written to a 1-D HDF5 dataset. ... we set the periodicity of I/O phases
in VPIC-IO using a 30 second sleep in place for the computation."

(The "≈32 MB" is per property per rank: 8 Mi particles × 4 bytes; a
rank moves 8 × 32 MiB = 256 MiB per time step.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from repro.hdf5 import FLOAT32, EventSet, H5Library, slab_1d
from repro.hdf5.vol import VOLConnector

__all__ = ["VPICConfig", "vpic_program"]

Mi = 1 << 20


@dataclass(frozen=True)
class VPICConfig:
    """VPIC-IO kernel parameters (paper defaults)."""

    particles_per_rank: int = 8 * Mi
    n_properties: int = 8
    steps: int = 5
    compute_seconds: float = 30.0
    path: str = "/vpic.h5"

    def __post_init__(self) -> None:
        if self.particles_per_rank < 1 or self.n_properties < 1 or self.steps < 1:
            raise ValueError(f"invalid VPIC config: {self}")
        if self.compute_seconds < 0:
            raise ValueError("compute_seconds must be non-negative")

    def bytes_per_rank_per_step(self) -> int:
        """Data one rank writes per time step (≈256 MiB by default)."""
        return self.particles_per_rank * self.n_properties * FLOAT32.itemsize

    def total_bytes(self, nranks: int) -> int:
        """Whole-run output volume (weak scaling: grows with ranks)."""
        return self.bytes_per_rank_per_step() * nranks * self.steps


def vpic_program(lib: H5Library, vol: VOLConnector, config: VPICConfig):
    """Per-rank coroutine: alternate computation and particle dumps."""

    def program(ctx) -> Generator:
        f = yield from lib.create(ctx, config.path, vol)
        es = EventSet(ctx.engine, name=f"vpic.r{ctx.rank}")
        n_global = config.particles_per_rank * ctx.size
        for step in range(config.steps):
            yield ctx.compute(config.compute_seconds)
            # Simulation time steps are bulk-synchronous (halo
            # exchanges); ranks enter the I/O phase together.
            yield from ctx.barrier()
            group = f.create_group(f"Step#{step}")
            for prop in range(config.n_properties):
                dset = group.create_dataset(
                    f"p{prop}", shape=(n_global,), dtype=FLOAT32
                )
                yield from dset.write(
                    slab_1d(ctx.rank, config.particles_per_rank),
                    phase=step, es=es,
                )
        yield from es.wait()
        yield from f.close()
        yield from vol.finalize(ctx)
        return ctx.now

    return program
