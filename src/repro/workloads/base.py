"""Shared helpers for workload programs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.trace import IOLog

__all__ = ["IterativeIOStats", "summarize_run"]


@dataclass(frozen=True)
class IterativeIOStats:
    """Summary of one run's I/O behaviour, in the paper's terms."""

    n_phases: int
    total_bytes: float
    peak_bandwidth: float  # best per-phase aggregate bandwidth (Fig. 3-6 metric)
    mean_bandwidth: float
    app_time: float  # end-to-end simulated duration (Fig. 7 metric)
    mode: str

    def __post_init__(self) -> None:
        if self.n_phases < 1:
            raise ValueError("need at least one I/O phase")


def summarize_run(log: IOLog, app_time: float, op: Optional[str] = None,
                  mode: str = "sync") -> IterativeIOStats:
    """Reduce an :class:`~repro.trace.IOLog` to the paper's metrics."""
    phases = log.phases(op=op)
    if not phases:
        raise ValueError("run produced no phased I/O records")
    total = sum(log.phase_bytes(p, op=op) for p in phases)
    return IterativeIOStats(
        n_phases=len(phases),
        total_bytes=total,
        peak_bandwidth=log.peak_bandwidth(op=op),
        mean_bandwidth=log.mean_bandwidth(op=op),
        app_time=app_time,
        mode=mode,
    )
