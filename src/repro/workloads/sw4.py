"""EQSIM / SW4: seismic wave propagation (paper §IV-C, Fig. 6).

"EQSIM is an earthquake simulation framework using SW4, a 3D seismic
modeling code ... We ran the simulation at grid size 50 with
30000x30000x17000 dimensions and checkpoint every 100 time steps.  The
simulation size does not increase as we scale up the compute
resources" — strong scaling.  A grid spacing of 50 m over that domain
gives a 600×600×340 point mesh; checkpoints persist the displacement
wavefields at two time levels (3 components each → 6 doubles/point).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from repro.hdf5 import FLOAT64, EventSet, H5Library, Hyperslab
from repro.hdf5.vol import VOLConnector

__all__ = ["SW4Config", "sw4_program"]


@dataclass(frozen=True)
class SW4Config:
    """SW4/EQSIM run parameters (paper defaults)."""

    domain_m: tuple[float, float, float] = (30000.0, 30000.0, 17000.0)
    grid_spacing_m: float = 50.0
    doubles_per_point: int = 6  # u(t), u(t-dt): 3 components each
    checkpoint_int: int = 100
    n_checkpoints: int = 3
    seconds_per_step: float = 0.25
    path: str = "/sw4_ckpt.h5"

    def __post_init__(self) -> None:
        if any(d <= 0 for d in self.domain_m) or self.grid_spacing_m <= 0:
            raise ValueError(f"invalid SW4 geometry: {self}")
        if self.doubles_per_point < 1:
            raise ValueError("doubles_per_point must be >= 1")
        if self.checkpoint_int < 1 or self.n_checkpoints < 1:
            raise ValueError(f"invalid SW4 checkpoint config: {self}")
        if self.seconds_per_step < 0:
            raise ValueError("seconds_per_step must be non-negative")

    def grid_points(self) -> int:
        """Total mesh points at the configured spacing."""
        n = 1
        for d in self.domain_m:
            n *= int(d / self.grid_spacing_m)
        return n

    def checkpoint_bytes(self) -> int:
        """Bytes per checkpoint (fixed — strong scaling)."""
        return self.grid_points() * self.doubles_per_point * FLOAT64.itemsize

    def compute_phase_seconds(self) -> float:
        """Duration of one computation phase."""
        return self.checkpoint_int * self.seconds_per_step


def sw4_program(lib: H5Library, vol: VOLConnector, config: SW4Config):
    """Per-rank coroutine: 100 wave-propagation steps, then a checkpoint."""
    total_elems = config.grid_points() * config.doubles_per_point

    def program(ctx) -> Generator:
        f = yield from lib.create(ctx, config.path, vol)
        es = EventSet(ctx.engine, name=f"sw4.r{ctx.rank}")
        # 1-D slab decomposition of the flattened wavefield.
        base = total_elems // ctx.size
        start = ctx.rank * base
        count = base if ctx.rank < ctx.size - 1 else total_elems - start
        for ckpt in range(config.n_checkpoints):
            yield ctx.compute(config.compute_phase_seconds())
            yield from ctx.barrier()  # wave steps are bulk-synchronous
            dset = f.create_dataset(
                f"/ckpt{ckpt:04d}/u", shape=(total_elems,), dtype=FLOAT64
            )
            if count:
                yield from dset.write(
                    Hyperslab(start=(start,), count=(count,)),
                    phase=ckpt, es=es,
                )
        yield from es.wait()
        yield from f.close()
        yield from vol.finalize(ctx)
        return ctx.now

    return program
