"""The paper's I/O kernels and applications (§IV-B, §IV-C).

Each workload module provides a config dataclass and a
``*_program(lib, vol, config)`` factory returning the per-rank coroutine
for :meth:`repro.mpi.job.MPIJob.run`.  Programs are connector-agnostic:
they always thread an event set through their writes, so the same
program runs synchronously (NativeVOL), asynchronously (AsyncVOL) or
adaptively (AdaptiveVOL) — the transparency property of the VOL design.

Fidelity notes: the paper itself replaces the kernels' computation with
sleeps ("the clustering computation was replaced with 30 seconds of
sleep time", §IV-B), so reproducing the *I/O structure* — dataset
layout, per-rank sizes, read/write direction, scaling mode and I/O
frequency — is exactly what the original evaluation measures.
"""

from repro.workloads.base import IterativeIOStats, summarize_run
from repro.workloads.vpic_io import VPICConfig, vpic_program
from repro.workloads.bdcats_io import BDCATSConfig, bdcats_program, prepopulate_vpic_file
from repro.workloads.amrex import (
    AMRHierarchy,
    Box,
    BoxArray,
    MultiFab,
    ParticleContainer,
)
from repro.workloads.nyx import NyxConfig, nyx_program
from repro.workloads.castro import CastroConfig, castro_program
from repro.workloads.sw4 import SW4Config, sw4_program
from repro.workloads.cosmoflow import CosmoflowConfig, cosmoflow_program
from repro.workloads.restart import RestartConfig, restart_program

__all__ = [
    "AMRHierarchy",
    "BDCATSConfig",
    "Box",
    "BoxArray",
    "CastroConfig",
    "CosmoflowConfig",
    "IterativeIOStats",
    "MultiFab",
    "NyxConfig",
    "ParticleContainer",
    "RestartConfig",
    "SW4Config",
    "VPICConfig",
    "bdcats_program",
    "castro_program",
    "cosmoflow_program",
    "nyx_program",
    "prepopulate_vpic_file",
    "restart_program",
    "summarize_run",
    "sw4_program",
    "vpic_program",
]
