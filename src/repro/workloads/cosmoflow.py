"""Cosmoflow: CNN training over 3-D matter distributions (§IV-C, Fig. 5).

"We used the publicly available Cosmoflow 128³ voxels dataset.  We
compare synchronous and asynchronous modes of a custom PyTorch
DataLoader.  We run each scaling scenario for 4 epochs with batch size
set to 8."

The data-parallel loader is modeled faithfully: every rank owns a shard
of samples (one HDF5 file per rank, as TFRecord-style sharding does),
reads a batch, then trains on it.  In synchronous mode each batch read
blocks; in asynchronous mode the VOL's prefetcher streams upcoming
samples into node memory while the GPUs train, so steady-state reads
block only for a local copy.  This is a read-side workload: scaling is
strong in the sense that more ranks train on proportionally fewer
samples each.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

import numpy as np

from repro.hdf5 import FLOAT32, H5Library
from repro.hdf5.vol import VOLConnector

__all__ = ["CosmoflowConfig", "cosmoflow_program"]


@dataclass(frozen=True)
class CosmoflowConfig:
    """Cosmoflow training-run parameters (paper defaults)."""

    voxels: int = 128  # samples are voxels³ * channels float32
    channels: int = 4
    batch_size: int = 8
    batches_per_rank: int = 8  # steps per epoch on each rank's shard
    epochs: int = 4
    seconds_per_batch: float = 1.0  # training-step time (GPU compute)
    path_prefix: str = "/cosmoflow_shard"
    #: Shuffle the shard each epoch (standard training practice).  A
    #: shuffled access order defeats the VOL's *sequential* prefetcher —
    #: the reason production loaders shuffle at the shard level and read
    #: each shard in order, or prefetch through an explicit queue.
    shuffle_seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.voxels < 1 or self.channels < 1:
            raise ValueError(f"invalid sample geometry: {self}")
        if self.batch_size < 1 or self.batches_per_rank < 1 or self.epochs < 1:
            raise ValueError(f"invalid loader config: {self}")
        if self.seconds_per_batch < 0:
            raise ValueError("seconds_per_batch must be non-negative")

    def sample_bytes(self) -> int:
        """One sample's size (≈33 MiB at the paper's 128³ × 4 channels)."""
        return self.voxels**3 * self.channels * FLOAT32.itemsize

    def samples_per_rank(self) -> int:
        """Shard size: samples each rank reads per epoch."""
        return self.batch_size * self.batches_per_rank

    def shard_path(self, rank: int) -> str:
        """Per-rank shard file path."""
        return f"{self.path_prefix}_r{rank}.h5"

    def prepopulate(self, lib: H5Library, nranks: int) -> None:
        """Create every rank's shard file metadata (the training set)."""
        shape = (self.voxels, self.voxels, self.voxels, self.channels)
        for rank in range(nranks):
            datasets = {
                f"/samples/s{i:05d}": (shape, FLOAT32)
                for i in range(self.samples_per_rank())
            }
            lib.prepopulate(self.shard_path(rank), datasets)


def cosmoflow_program(lib: H5Library, vol: VOLConnector, config: CosmoflowConfig):
    """Per-rank coroutine: the DataLoader + training loop.

    Phase numbering: one phase per (epoch, batch) pair so per-batch read
    bandwidth — the paper's Fig. 5 metric — falls out of the log.
    """

    def program(ctx) -> Generator:
        f = yield from lib.open(ctx, config.shard_path(ctx.rank), vol)
        spr = config.samples_per_rank()
        phase = 0
        for epoch in range(config.epochs):
            if config.shuffle_seed is not None:
                rng = np.random.default_rng(
                    (config.shuffle_seed, epoch, ctx.rank)
                )
                order = rng.permutation(spr)
            else:
                order = range(spr)
            order = list(order)
            for batch in range(config.batches_per_rank):
                for j in range(config.batch_size):
                    idx = order[(batch * config.batch_size + j) % spr]
                    dset = f.dataset(f"/samples/s{idx:05d}")
                    yield from dset.read(phase=phase)
                yield ctx.compute(config.seconds_per_batch)
                # data-parallel training: gradient all-reduce per step
                yield from ctx.comm.allreduce(0.0, rank=ctx.rank)
                phase += 1
        yield from f.close()
        yield from vol.finalize(ctx)
        return ctx.now

    return program
