"""BD-CATS-IO: particle-read kernel of the BD-CATS DBSCAN clustering.

Paper §IV-B: "particle data written by plasma physics and astrophysics
are read from HDF5 files.  In our tests, we read the data written by
the VPIC-IO kernel.  This I/O kernel reads all the time steps' data,
and the clustering computation was replaced with 30 seconds of sleep
time."  §V-A.2: with the async VOL, "prefetching is triggered after
reading data for the first time step.  The first read is a blocking
operation."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from repro.hdf5 import FLOAT32, H5Library, slab_1d
from repro.hdf5.vol import VOLConnector
from repro.workloads.vpic_io import VPICConfig

__all__ = ["BDCATSConfig", "bdcats_program", "prepopulate_vpic_file"]

Mi = 1 << 20


@dataclass(frozen=True)
class BDCATSConfig:
    """BD-CATS-IO kernel parameters (mirrors the VPIC file layout)."""

    particles_per_rank: int = 8 * Mi
    n_properties: int = 8
    steps: int = 5
    compute_seconds: float = 30.0
    path: str = "/vpic.h5"

    def __post_init__(self) -> None:
        if self.particles_per_rank < 1 or self.n_properties < 1 or self.steps < 1:
            raise ValueError(f"invalid BD-CATS config: {self}")
        if self.compute_seconds < 0:
            raise ValueError("compute_seconds must be non-negative")

    @classmethod
    def matching(cls, vpic: VPICConfig, compute_seconds: float = 30.0
                 ) -> "BDCATSConfig":
        """Config that reads exactly what a VPIC-IO run wrote."""
        return cls(
            particles_per_rank=vpic.particles_per_rank,
            n_properties=vpic.n_properties,
            steps=vpic.steps,
            compute_seconds=compute_seconds,
            path=vpic.path,
        )


def prepopulate_vpic_file(lib: H5Library, config: BDCATSConfig, nranks: int
                          ) -> None:
    """Materialize the VPIC output file's metadata without simulating
    the write campaign (stands in for a previous job's output)."""
    from repro.hdf5 import FLOAT32 as F32
    n_global = config.particles_per_rank * nranks
    datasets = {
        f"/Step#{step}/p{prop}": ((n_global,), F32)
        for step in range(config.steps)
        for prop in range(config.n_properties)
    }
    lib.prepopulate(config.path, datasets)


def bdcats_program(lib: H5Library, vol: VOLConnector, config: BDCATSConfig,
                   cache=None, prefetch: bool = False):
    """Per-rank coroutine: read every time step, 30 s of clustering between.

    With a :class:`~repro.cache.CacheSubsystem` and ``prefetch=True``,
    each rank *declares* time step N+1's reads to the cache planner just
    before step N's clustering window, deadline-stamped at the moment
    the reader will come back for them (now + compute time).  The
    planner's deadline-ordered copies then run under compute — the
    read-side mirror of the paper's write-behind staging (§V-A.2's
    "prefetching is triggered after reading data for the first time
    step" generalized to an explicit declared-read interface).
    """
    use_prefetch = prefetch and cache is not None and cache.prefetch

    def declare_step(ctx, f, step: int) -> int:
        """Register one future step's reads; returns submissions made."""
        from repro.cache import CacheRequest, cache_key

        slab = slab_1d(ctx.rank, config.particles_per_rank)
        deadline = ctx.now + config.compute_seconds
        submitted = 0
        for prop in range(config.n_properties):
            path = f"/Step#{step}/p{prop}"
            stored = f.stored.datasets[path]
            submitted += cache.planner.submit(CacheRequest(
                tenant=f"bdcats[{ctx.rank}]",
                key=cache_key(ctx.rank, path, slab),
                nbytes=float(slab.nbytes(stored.dtype.itemsize)),
                tier_src="pfs", tier_dst="dram", deadline=deadline,
                node_index=ctx.node.index, target=f.stored.target,
            ))
        return submitted

    def program(ctx) -> Generator:
        f = yield from lib.open(ctx, config.path, vol)
        for step in range(config.steps):
            yield from ctx.barrier()  # clustering rounds are collective
            for prop in range(config.n_properties):
                dset = f.dataset(f"/Step#{step}/p{prop}")
                yield from dset.read(
                    slab_1d(ctx.rank, config.particles_per_rank), phase=step
                )
            if use_prefetch and step + 1 < config.steps:
                declare_step(ctx, f, step + 1)
            yield ctx.compute(config.compute_seconds)
        yield from f.close()
        yield from vol.finalize(ctx)
        return ctx.now

    return program
