"""Checkpoint/restart: the canonical consumer of checkpoint I/O.

The paper's workloads all *produce* checkpoints ("large-scale
simulations which commonly use a checkpoint-based approach", §IV-B);
this module closes the loop: a job that begins by reading the newest
checkpoint back (restart), then resumes the compute/checkpoint cycle.
Restart reads are a synchronous, latency-critical burst at job start —
prefetching cannot help the first read (§V-A.2), so the restart phase
isolates the pure synchronous read path, while the subsequent
checkpoint phases benefit from asynchronous writes as usual.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from repro.hdf5 import FLOAT64, EventSet, H5Library, Hyperslab, slab_1d
from repro.hdf5.vol import VOLConnector

__all__ = ["RestartConfig", "restart_program"]

Mi = 1 << 20


@dataclass(frozen=True)
class RestartConfig:
    """A restartable iterative application's parameters."""

    elems_per_rank: int = 4 * Mi  # 32 MiB of state per rank
    checkpoints: int = 3  # checkpoints to write after restarting
    compute_seconds: float = 10.0
    path: str = "/restart.h5"
    #: Checkpoint index to restart from (None = fresh start).
    restart_from: Optional[int] = None

    def __post_init__(self) -> None:
        if self.elems_per_rank < 1 or self.checkpoints < 1:
            raise ValueError(f"invalid restart config: {self}")
        if self.compute_seconds < 0:
            raise ValueError("compute_seconds must be non-negative")
        if self.restart_from is not None and self.restart_from < 0:
            raise ValueError("restart_from must be non-negative")

    def checkpoint_name(self, index: int) -> str:
        """Dataset path of checkpoint ``index``."""
        return f"/ckpt{index:05d}/state"

    def state_bytes_per_rank(self) -> int:
        """Bytes of state each rank holds (and checkpoints)."""
        return self.elems_per_rank * FLOAT64.itemsize


def restart_program(lib: H5Library, vol: VOLConnector, config: RestartConfig):
    """Per-rank coroutine: (restart-read) → [compute → checkpoint]*.

    Returns ``(restart_seconds, finish_time)`` per rank so harnesses can
    separate the restart cost from steady-state progress.
    """

    def program(ctx) -> Generator:
        first_new = 0
        restart_seconds = 0.0
        if config.restart_from is None:
            f = yield from lib.create(ctx, config.path, vol)
        else:
            f = yield from lib.open(ctx, config.path, vol)
            name = config.checkpoint_name(config.restart_from)
            dset = f.dataset(name)
            t0 = ctx.now
            yield from dset.read(slab_1d(ctx.rank, config.elems_per_rank),
                                 phase=-1)
            yield from ctx.barrier()  # everyone restored before stepping
            restart_seconds = ctx.now - t0
            first_new = config.restart_from + 1

        es = EventSet(ctx.engine, name=f"restart.r{ctx.rank}")
        n_global = config.elems_per_rank * ctx.size
        for k in range(first_new, first_new + config.checkpoints):
            yield ctx.compute(config.compute_seconds)
            yield from ctx.barrier()
            dset = f.create_dataset(config.checkpoint_name(k),
                                    shape=(n_global,), dtype=FLOAT64)
            yield from dset.write(slab_1d(ctx.rank, config.elems_per_rank),
                                  phase=k, es=es)
        yield from es.wait()
        yield from f.close()
        yield from vol.finalize(ctx)
        return (restart_seconds, ctx.now)

    return program
