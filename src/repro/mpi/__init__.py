"""Simulated MPI runtime.

Ranks are cooperative coroutines on the discrete-event engine; a
:class:`~repro.mpi.job.MPIJob` places them on cluster nodes (block
placement, as batch schedulers on Summit/Cori allocate whole nodes) and
runs one *program* generator per rank.  Collectives follow a LogP-style
``alpha·⌈log2 p⌉ + bytes/beta`` cost model
(:mod:`repro.mpi.costmodel`).
"""

from repro.mpi.comm import Communicator, RankContext, Request
from repro.mpi.costmodel import CollectiveCostModel
from repro.mpi.job import MPIJob

__all__ = ["CollectiveCostModel", "Communicator", "MPIJob", "RankContext",
           "Request"]
