"""LogP-style cost model for MPI collectives.

The paper folds "any communication time and the synchronization time
among parallel processes" into the computation phase (§III-A), so the
collective model here only needs to be *plausible*, not exact: a
binomial-tree latency term plus a bandwidth term,

``t = alpha * ceil(log2 p) + nbytes / beta``

with machine-specific ``alpha``/``beta`` from
:class:`~repro.platform.spec.InterconnectSpec`.
"""

from __future__ import annotations

import math

from repro.platform.spec import InterconnectSpec

__all__ = ["CollectiveCostModel"]


class CollectiveCostModel:
    """Closed-form costs for the collectives the workloads use."""

    def __init__(self, spec: InterconnectSpec):
        self.spec = spec

    def _tree_depth(self, nprocs: int) -> int:
        if nprocs < 1:
            raise ValueError(f"nprocs must be >= 1, got {nprocs}")
        return max(0, math.ceil(math.log2(nprocs)))

    def barrier(self, nprocs: int) -> float:
        """Dissemination barrier: pure latency term."""
        return self.spec.alpha * self._tree_depth(nprocs)

    def bcast(self, nprocs: int, nbytes: float) -> float:
        """Binomial-tree broadcast."""
        depth = self._tree_depth(nprocs)
        return self.spec.alpha * depth + depth * nbytes / self.spec.beta

    def reduce(self, nprocs: int, nbytes: float) -> float:
        """Binomial-tree reduction (same asymptotics as bcast)."""
        return self.bcast(nprocs, nbytes)

    def allreduce(self, nprocs: int, nbytes: float) -> float:
        """Reduce + broadcast."""
        return self.reduce(nprocs, nbytes) + self.bcast(nprocs, nbytes)

    def gather(self, nprocs: int, nbytes_per_rank: float) -> float:
        """Root receives ``(p-1)·n`` bytes; bandwidth-dominated."""
        depth = self._tree_depth(nprocs)
        total = max(0, nprocs - 1) * nbytes_per_rank
        return self.spec.alpha * depth + total / self.spec.beta

    def alltoall(self, nprocs: int, nbytes_per_rank: float) -> float:
        """Each rank exchanges with every other: p·n bytes per rank."""
        return (
            self.spec.alpha * max(0, nprocs - 1)
            + nprocs * nbytes_per_rank / self.spec.beta
        )

    def point_to_point(self, nbytes: float) -> float:
        """Single message cost."""
        return self.spec.alpha + nbytes / self.spec.beta
