"""Communicators and per-rank execution contexts.

A :class:`Communicator` coordinates a fixed set of ranks: collectives
are modeled as *synchronize, then pay the closed-form cost* — every
participant blocks until the last rank arrives (the paper's "the MPI
process taking the longest time determines the I/O time" applies the
same way to collective completion), then all resume after the modeled
collective time.

A :class:`RankContext` is what workload programs receive: it knows its
rank, node and communicator, and exposes ``compute(seconds)`` — the
paper's computation phase (a sleep in the I/O kernels, §IV-B) — plus
convenience accessors for the cluster's data-movement primitives.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.sim.engine import Engine, SimEvent
from repro.sim.primitives import Barrier
from repro.mpi.costmodel import CollectiveCostModel
from repro.platform.cluster import Cluster, Node

__all__ = ["Communicator", "RankContext", "Request"]


class Request:
    """Handle for a non-blocking point-to-point operation (MPI_Request).

    ``yield request`` (or :meth:`wait`) blocks until the operation
    completes; for receives the value of the yield is the message.
    """

    __slots__ = ("done",)

    def __init__(self, done: SimEvent):
        self.done = done

    @property
    def complete(self) -> bool:
        """Non-blocking completion test (MPI_Test)."""
        return self.done.triggered

    def wait(self) -> SimEvent:
        """The waitable to ``yield`` (MPI_Wait)."""
        return self.done

    def _as_event(self, engine: Engine) -> SimEvent:
        return self.done


class Communicator:
    """A group of ranks with synchronizing collectives."""

    def __init__(self, engine: Engine, size: int, cost: CollectiveCostModel,
                 name: str = "comm_world"):
        if size < 1:
            raise ValueError(f"communicator size must be >= 1, got {size}")
        self.engine = engine
        self.size = size
        self.cost = cost
        self.name = name
        self._barrier = Barrier(engine, parties=size, name=f"{name}.barrier")
        #: Root's contribution collected by :meth:`gather` per generation.
        self._gather_slots: dict[int, list[Any]] = {}
        #: (src, dst, tag) -> queued unmatched sends (value, nbytes, event).
        self._mailbox: dict[tuple, list] = {}
        #: (src, dst, tag) -> queued unmatched receives (event).
        self._pending_recv: dict[tuple, list] = {}

    # Each collective is a generator the rank must ``yield from``.
    def barrier(self) -> Generator:
        """Block until every rank arrives, then pay the barrier latency."""
        yield self._barrier.wait()
        yield self.engine.timeout(self.cost.barrier(self.size))

    def bcast(self, value: Any, root: int, rank: int,
              nbytes: float = 0.0) -> Generator:
        """Broadcast ``value`` from ``root``; all ranks return it.

        Implemented as a gather-to-slot + synchronized release, which
        keeps values consistent without modeling individual messages.
        """
        generation = yield from self._exchange(rank, value if rank == root else None)
        yield self.engine.timeout(self.cost.bcast(self.size, nbytes))
        values = self._gather_slots[generation]
        result = next(v for v in values if v is not None) if any(
            v is not None for v in values
        ) else None
        self._maybe_free(generation)
        return result

    def gather(self, value: Any, rank: int, nbytes_per_rank: float = 0.0
               ) -> Generator:
        """Gather one value per rank; every rank returns the full list."""
        generation = yield from self._exchange(rank, value)
        yield self.engine.timeout(self.cost.gather(self.size, nbytes_per_rank))
        values = list(self._gather_slots[generation])
        self._maybe_free(generation)
        return values

    def allreduce(self, value: float, rank: int, op=sum,
                  nbytes: float = 8.0) -> Generator:
        """Reduce scalar contributions with ``op``; all ranks get the result."""
        generation = yield from self._exchange(rank, value)
        yield self.engine.timeout(self.cost.allreduce(self.size, nbytes))
        result = op(self._gather_slots[generation])
        self._maybe_free(generation)
        return result

    def allmax(self, value: float, rank: int) -> Generator:
        """Convenience max-allreduce (used for I/O phase timing)."""
        result = yield from self.allreduce(value, rank, op=max)
        return result

    # -- point-to-point ----------------------------------------------------
    def isend(self, value: Any, dest: int, rank: int, tag: int = 0,
              nbytes: float = 0.0) -> Request:
        """Non-blocking send (MPI_Isend); completes when matched+delivered."""
        self._check_rank(dest)
        self._check_rank(rank)
        key = (rank, dest, tag)
        done = self.engine.event(name=f"{self.name}.isend{key}")
        waiting = self._pending_recv.get(key)
        if waiting:
            recv_done = waiting.pop(0)
            delay = self.cost.point_to_point(nbytes)
            done.succeed(delay=delay)
            recv_done.succeed(value, delay=delay)
        else:
            self._mailbox.setdefault(key, []).append((value, nbytes, done))
        return Request(done)

    def irecv(self, source: int, rank: int, tag: int = 0) -> Request:
        """Non-blocking receive (MPI_Irecv); the wait yields the message."""
        self._check_rank(source)
        self._check_rank(rank)
        key = (source, rank, tag)
        done = self.engine.event(name=f"{self.name}.irecv{key}")
        queued = self._mailbox.get(key)
        if queued:
            value, nbytes, send_done = queued.pop(0)
            delay = self.cost.point_to_point(nbytes)
            send_done.succeed(delay=delay)
            done.succeed(value, delay=delay)
        else:
            self._pending_recv.setdefault(key, []).append(done)
        return Request(done)

    def send(self, value: Any, dest: int, rank: int, tag: int = 0,
             nbytes: float = 0.0) -> Generator:
        """Blocking send (MPI_Send, rendezvous semantics)."""
        yield self.isend(value, dest, rank, tag=tag, nbytes=nbytes)

    def recv(self, source: int, rank: int, tag: int = 0) -> Generator:
        """Blocking receive (MPI_Recv); returns the message."""
        value = yield self.irecv(source, rank, tag=tag)
        return value

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} outside communicator of {self.size}")

    # ------------------------------------------------------------------
    def _exchange(self, rank: int, value: Any) -> Generator:
        """Deposit ``value``, wait for all ranks; returns the generation."""
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} outside communicator of {self.size}")
        generation = self._barrier.generation
        slot = self._gather_slots.setdefault(generation, [None] * self.size)
        slot[rank] = value
        gen = yield self._barrier.wait()
        return gen

    def _maybe_free(self, generation: int) -> None:
        # Slots are tiny; free aggressively once a later generation exists.
        stale = [g for g in self._gather_slots if g < generation]
        for g in stale:
            del self._gather_slots[g]


class RankContext:
    """Everything one rank's program needs."""

    def __init__(self, rank: int, comm: Communicator, node: Node,
                 cluster: Cluster):
        self.rank = rank
        self.comm = comm
        self.node = node
        self.cluster = cluster
        self.engine = cluster.engine
        #: Wall-clock (simulated) moments of interest, fillable by programs.
        self.marks: dict[str, float] = {}

    @property
    def size(self) -> int:
        """Number of ranks in the communicator."""
        return self.comm.size

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.engine.now

    def compute(self, seconds: float):
        """The computation phase: a pure delay (paper replaces compute
        with sleeps in the I/O kernels, §IV-B)."""
        if seconds < 0:
            raise ValueError(f"negative compute time: {seconds}")
        return self.engine.timeout(seconds)

    def barrier(self) -> Generator:
        """Synchronize all ranks of the communicator."""
        return self.comm.barrier()

    def mark(self, label: str) -> None:
        """Record the current simulated time under ``label``."""
        self.marks[label] = self.engine.now

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<RankContext rank={self.rank}/{self.size} node={self.node.index}>"
