"""Job launcher: places ranks on nodes and runs one program per rank.

The *program* is a callable ``program(ctx, *args, **kwargs)`` returning
a generator (the rank's coroutine).  ``MPIJob.run`` drives the engine to
completion and returns the per-rank results, mirroring how ``mpiexec``
launches one process per rank.
"""

from __future__ import annotations

import traceback
from typing import Any, Callable, Optional, Sequence

from repro.sim.engine import Process, SimulationError
from repro.mpi.comm import Communicator, RankContext
from repro.mpi.costmodel import CollectiveCostModel
from repro.platform.cluster import Cluster

__all__ = ["MPIJob"]


def _name_list(procs: list, limit: int = 8) -> str:
    """Comma-joined process names, elided past ``limit`` entries."""
    names = [p.name for p in procs[:limit]]
    if len(procs) > limit:
        names.append(f"... +{len(procs) - limit} more")
    return ", ".join(names)


class MPIJob:
    """An MPI job of ``nprocs`` ranks on a cluster allocation.

    Placement is block-wise: ranks ``[k*rpn, (k+1)*rpn)`` live on node
    ``node_offset + k`` (``rpn`` = ranks per node, defaulting to the
    machine's paper-documented density: 6 on Summit, 32 on
    Cori-Haswell).  ``node_offset`` lets several jobs share one cluster
    on disjoint node sets — used to study co-tenant file-system
    contention mechanistically.  ``node_indices`` instead places the
    job on an explicit (possibly non-contiguous) node list, which is
    how :class:`repro.sched.Scheduler` packs jobs into a fragmented
    free set; node ``node_indices[k]`` hosts ranks ``[k*rpn, (k+1)*rpn)``.
    """

    def __init__(
        self,
        cluster: Cluster,
        nprocs: int,
        ranks_per_node: Optional[int] = None,
        name: str = "job",
        node_offset: int = 0,
        node_indices: Optional[Sequence[int]] = None,
    ):
        if nprocs < 1:
            raise ValueError(f"nprocs must be >= 1, got {nprocs}")
        if node_offset < 0:
            raise ValueError(f"node_offset must be >= 0, got {node_offset}")
        rpn = ranks_per_node or cluster.machine.default_ranks_per_node
        if rpn < 1:
            raise ValueError(f"ranks_per_node must be >= 1, got {rpn}")
        needed_nodes = (nprocs + rpn - 1) // rpn
        if node_indices is not None:
            # Explicit (possibly non-contiguous) placement, as handed
            # out by a scheduler working over a fragmented free set.
            if node_offset != 0:
                raise ValueError("node_offset and node_indices are exclusive")
            if len(node_indices) < needed_nodes:
                raise ValueError(
                    f"{nprocs} ranks at {rpn}/node need {needed_nodes} nodes, "
                    f"placement lists {len(node_indices)}"
                )
            bad = [i for i in node_indices if not 0 <= i < len(cluster.nodes)]
            if bad:
                raise ValueError(f"node indices out of range: {bad}")
            nodes = [cluster.nodes[i] for i in node_indices]
        elif node_offset + needed_nodes > len(cluster.nodes):
            raise ValueError(
                f"{nprocs} ranks at {rpn}/node need {needed_nodes} nodes "
                f"from offset {node_offset}, allocation has "
                f"{len(cluster.nodes)}"
            )
        else:
            nodes = cluster.nodes[node_offset:node_offset + needed_nodes]
        self.cluster = cluster
        self.nprocs = nprocs
        self.ranks_per_node = rpn
        self.name = name
        self.node_offset = node_offset
        self.node_indices = (tuple(node_indices)
                             if node_indices is not None else None)
        self.comm = Communicator(
            cluster.engine,
            nprocs,
            CollectiveCostModel(cluster.machine.interconnect),
            name=f"{name}.comm",
        )
        self.contexts = [
            RankContext(
                rank,
                self.comm,
                nodes[rank // rpn],
                cluster,
            )
            for rank in range(nprocs)
        ]

    @property
    def nnodes(self) -> int:
        """Number of nodes this job actually occupies."""
        return (self.nprocs + self.ranks_per_node - 1) // self.ranks_per_node

    def launch(self, program: Callable, *args: Any, **kwargs: Any) -> list[Process]:
        """Start one process per rank without driving the engine."""
        return [
            self.cluster.engine.process(
                program(ctx, *args, **kwargs),
                name=f"{self.name}.rank{ctx.rank}",
            )
            for ctx in self.contexts
        ]

    def run(self, program: Callable, *args: Any, **kwargs: Any) -> list[Any]:
        """Run ``program`` on every rank to completion; per-rank results.

        Raises :class:`~repro.sim.engine.SimulationError` on deadlock
        (e.g. mismatched collectives), with the surviving ranks' state
        in the message, and re-raises a failed rank's unhandled
        exception.  When several ranks failed *differently* — typical
        under fault injection, where one storm bites ranks in different
        ways — the error reports every failed rank plus the first
        rank's traceback instead of silently showing only whichever
        happened to be rank 0's neighbour.  Ranks that all died with
        the identical exception (the same programming error everywhere)
        re-raise that exception unchanged, so callers can match on it.
        """
        procs = self.launch(program, *args, **kwargs)
        engine = self.cluster.engine
        for proc in procs:
            # Subscribe to each rank's terminal event so one rank's
            # failure is recorded (and reported below, alongside every
            # other casualty) instead of aborting the whole simulation
            # mid-flight.
            proc.done._wait(lambda ev: None)
        engine.run()

        deadlocked = [p for p in procs if p.alive]
        if deadlocked:
            finished = sum(1 for p in procs if not p.alive and p.done._exc is None)
            failed = sum(1 for p in procs if not p.alive and p.done._exc is not None)
            raise SimulationError(
                f"{len(deadlocked)}/{len(procs)} ranks deadlocked "
                f"(mismatched collective or un-triggered event) at "
                f"t={engine.now}: {_name_list(deadlocked)}; surviving "
                f"ranks: {finished} completed, {failed} failed"
            )

        failures = [p for p in procs if p.done._exc is not None]
        if len({(type(p.done._exc), str(p.done._exc)) for p in failures}) == 1:
            # One rank died, or every rank died identically (the same
            # programming error everywhere): raise the original
            # exception so callers can match on its type directly.
            raise failures[0].done._exc
        if failures:
            first = failures[0]
            tb = "".join(traceback.format_exception(
                type(first.done._exc), first.done._exc,
                first.done._exc.__traceback__,
            ))
            raise SimulationError(
                f"{len(failures)}/{len(procs)} ranks failed: "
                f"{_name_list(failures)}; first failure ({first.name}) "
                f"was {type(first.done._exc).__name__}: {first.done._exc}\n"
                f"{tb}"
            ) from first.done._exc
        return [proc.value for proc in procs]
