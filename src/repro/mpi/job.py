"""Job launcher: places ranks on nodes and runs one program per rank.

The *program* is a callable ``program(ctx, *args, **kwargs)`` returning
a generator (the rank's coroutine).  ``MPIJob.run`` drives the engine to
completion and returns the per-rank results, mirroring how ``mpiexec``
launches one process per rank.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.engine import Process, SimulationError
from repro.mpi.comm import Communicator, RankContext
from repro.mpi.costmodel import CollectiveCostModel
from repro.platform.cluster import Cluster

__all__ = ["MPIJob"]


class MPIJob:
    """An MPI job of ``nprocs`` ranks on a cluster allocation.

    Placement is block-wise: ranks ``[k*rpn, (k+1)*rpn)`` live on node
    ``node_offset + k`` (``rpn`` = ranks per node, defaulting to the
    machine's paper-documented density: 6 on Summit, 32 on
    Cori-Haswell).  ``node_offset`` lets several jobs share one cluster
    on disjoint node sets — used to study co-tenant file-system
    contention mechanistically.
    """

    def __init__(
        self,
        cluster: Cluster,
        nprocs: int,
        ranks_per_node: Optional[int] = None,
        name: str = "job",
        node_offset: int = 0,
    ):
        if nprocs < 1:
            raise ValueError(f"nprocs must be >= 1, got {nprocs}")
        if node_offset < 0:
            raise ValueError(f"node_offset must be >= 0, got {node_offset}")
        rpn = ranks_per_node or cluster.machine.default_ranks_per_node
        if rpn < 1:
            raise ValueError(f"ranks_per_node must be >= 1, got {rpn}")
        needed_nodes = (nprocs + rpn - 1) // rpn
        if node_offset + needed_nodes > len(cluster.nodes):
            raise ValueError(
                f"{nprocs} ranks at {rpn}/node need {needed_nodes} nodes "
                f"from offset {node_offset}, allocation has "
                f"{len(cluster.nodes)}"
            )
        self.cluster = cluster
        self.nprocs = nprocs
        self.ranks_per_node = rpn
        self.name = name
        self.node_offset = node_offset
        self.comm = Communicator(
            cluster.engine,
            nprocs,
            CollectiveCostModel(cluster.machine.interconnect),
            name=f"{name}.comm",
        )
        self.contexts = [
            RankContext(
                rank,
                self.comm,
                cluster.nodes[node_offset + rank // rpn],
                cluster,
            )
            for rank in range(nprocs)
        ]

    @property
    def nnodes(self) -> int:
        """Number of nodes this job actually occupies."""
        return (self.nprocs + self.ranks_per_node - 1) // self.ranks_per_node

    def launch(self, program: Callable, *args: Any, **kwargs: Any) -> list[Process]:
        """Start one process per rank without driving the engine."""
        return [
            self.cluster.engine.process(
                program(ctx, *args, **kwargs),
                name=f"{self.name}.rank{ctx.rank}",
            )
            for ctx in self.contexts
        ]

    def run(self, program: Callable, *args: Any, **kwargs: Any) -> list[Any]:
        """Run ``program`` on every rank to completion; per-rank results.

        Raises :class:`~repro.sim.engine.SimulationError` on deadlock
        (e.g. mismatched collectives) and re-raises any rank's unhandled
        exception.
        """
        procs = self.launch(program, *args, **kwargs)
        engine = self.cluster.engine
        engine.run()
        results = []
        for proc in procs:
            if proc.alive:
                raise SimulationError(
                    f"{proc.name} deadlocked (mismatched collective or "
                    f"un-triggered event) at t={engine.now}"
                )
            if proc.done._exc is not None:
                raise proc.done._exc
            results.append(proc.value)
        return results
