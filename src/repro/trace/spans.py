"""Per-tenant spans: attributing simulated time to jobs in a fleet.

Single-job runs attribute everything to "the application"; once a
scheduler co-runs many tenants on one engine, every reported second
needs an owner.  A :class:`Span` is one labelled interval of simulated
time tagged with the job id that owns it (``queued``, ``run``, and
whatever finer-grained intervals a runner chooses to record), plus a
free-form ``meta`` dict — the scheduler stores each job's
:class:`~repro.sim.engine.EngineStats` deltas there, so event and
rebalance counts are attributable per tenant the same way Darshan
attributes I/O time per file.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["Span", "SpanLog"]


@dataclass(frozen=True)
class Span:
    """One labelled interval of simulated time owned by a job."""

    job_id: int
    name: str
    t_start: float
    t_end: float
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.t_end < self.t_start:
            raise ValueError(
                f"span {self.name!r} ends before it starts: "
                f"[{self.t_start}, {self.t_end}]"
            )

    @property
    def duration(self) -> float:
        """Length of the interval in simulated seconds."""
        return self.t_end - self.t_start


class SpanLog:
    """Append-only log of :class:`Span` with per-tenant reductions."""

    def __init__(self) -> None:
        self.spans: list[Span] = []

    def __len__(self) -> int:
        return len(self.spans)

    def record(self, job_id: int, name: str, t_start: float, t_end: float,
               **meta: Any) -> Span:
        """Create, store and return one span."""
        span = Span(job_id, name, t_start, t_end, meta)
        self.spans.append(span)
        return span

    def for_job(self, job_id: int) -> list[Span]:
        """All spans owned by ``job_id``, in record order."""
        return [s for s in self.spans if s.job_id == job_id]

    def job_ids(self) -> list[int]:
        """Sorted distinct job ids present in the log."""
        return sorted({s.job_id for s in self.spans})

    def total(self, job_id: int, name: Optional[str] = None) -> float:
        """Total duration of ``job_id``'s spans (optionally one label)."""
        return sum(
            s.duration for s in self.spans
            if s.job_id == job_id and (name is None or s.name == name)
        )

    def tenant_table(self) -> list[dict]:
        """One row per job: queued/run durations plus merged span meta.

        The merged meta dict is the union of each span's ``meta`` (later
        spans win on key collisions), which is where the scheduler's
        per-job :class:`~repro.sim.engine.EngineStats` deltas surface.
        """
        rows = []
        for job_id in self.job_ids():
            meta: dict = {}
            for span in self.for_job(job_id):
                meta.update(span.meta)
            rows.append({
                "job_id": job_id,
                "queued_s": self.total(job_id, "queued"),
                "run_s": self.total(job_id, "run"),
                **meta,
            })
        return rows

    def to_json(self) -> str:
        """Serialize all spans as a JSON array."""
        return json.dumps([
            {
                "job_id": s.job_id,
                "name": s.name,
                "t_start": s.t_start,
                "t_end": s.t_end,
                "meta": s.meta,
            }
            for s in self.spans
        ])
