"""Darshan-style I/O profiling reports from operation logs.

The paper motivates the whole study with a tooling gap: "profiling and
identifying the effectiveness of such methods has become difficult due
to application and system complexity" (§II-B).  This module turns an
:class:`~repro.trace.IOLog` plus the application duration into the kind
of report I/O characterization tools (Darshan, Recorder) produce:
how much of the run each rank spent blocked in I/O, the request-size
histogram, per-phase timing, and the sync/async split.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.trace.recorder import IOLog

__all__ = ["IOProfile", "profile_log"]

#: Request-size histogram bucket edges (bytes), Darshan-style.
SIZE_BUCKETS = [
    (0, 4 << 10, "0-4KiB"),
    (4 << 10, 1 << 20, "4KiB-1MiB"),
    (1 << 20, 32 << 20, "1-32MiB"),
    (32 << 20, 1 << 30, "32MiB-1GiB"),
    (1 << 30, math.inf, ">1GiB"),
]


@dataclass
class IOProfile:
    """Aggregated I/O behaviour of one run."""

    app_time: float
    n_ops: int
    n_ranks: int
    total_bytes: float
    bytes_read: float
    bytes_written: float
    #: fraction of the run the slowest/median rank spent blocked in I/O
    max_io_fraction: float
    median_io_fraction: float
    #: ops per size bucket label
    size_histogram: dict[str, int]
    #: ops per mode ('sync'/'async') and cache hits
    mode_counts: dict[str, int]
    cache_hits: int
    #: per-phase (io_time, bytes) in phase order
    phase_table: list[tuple[int, float, float]] = field(default_factory=list)

    def to_text(self) -> str:
        """Render as a Darshan-like text report."""
        lines = ["=== I/O profile ==="]
        lines.append(f"application time       {self.app_time:12.3f} s")
        lines.append(f"ranks / operations     {self.n_ranks} / {self.n_ops}")
        lines.append(
            f"bytes moved            {self.total_bytes / 1e9:12.3f} GB "
            f"(write {self.bytes_written / 1e9:.3f}, "
            f"read {self.bytes_read / 1e9:.3f})"
        )
        lines.append(
            f"I/O-blocked fraction   max {self.max_io_fraction * 100:6.2f}%  "
            f"median {self.median_io_fraction * 100:6.2f}%"
        )
        lines.append("request sizes:")
        for label in [b[2] for b in SIZE_BUCKETS]:
            count = self.size_histogram.get(label, 0)
            if count:
                lines.append(f"  {label:>12s}  {count:8d} ops")
        mode_bits = ", ".join(
            f"{mode}: {count}" for mode, count in sorted(self.mode_counts.items())
        )
        lines.append(f"modes: {mode_bits}; prefetch cache hits: {self.cache_hits}")
        if self.phase_table:
            lines.append("phases (id, io time s, GB):")
            for phase, io_time, nbytes in self.phase_table:
                lines.append(
                    f"  {phase:4d}  {io_time:10.4f}  {nbytes / 1e9:10.3f}"
                )
        return "\n".join(lines)


def profile_log(log: IOLog, app_time: float,
                n_ranks: Optional[int] = None) -> IOProfile:
    """Build an :class:`IOProfile` from a run's log and duration."""
    if app_time <= 0:
        raise ValueError(f"app_time must be positive, got {app_time}")
    if not log.records:
        raise ValueError("empty I/O log")
    ranks = sorted({r.rank for r in log.records})
    n_ranks = n_ranks if n_ranks is not None else len(ranks)

    fractions = sorted(
        log.total_blocking_time(rank) / app_time for rank in ranks
    )
    histogram: dict[str, int] = {}
    for r in log.records:
        for lo, hi, label in SIZE_BUCKETS:
            if lo <= r.nbytes < hi:
                histogram[label] = histogram.get(label, 0) + 1
                break
    mode_counts: dict[str, int] = {}
    for r in log.records:
        mode_counts[r.mode] = mode_counts.get(r.mode, 0) + 1

    phase_table = []
    for phase in log.phases():
        phase_table.append(
            (phase, log.phase_io_time(phase), log.phase_bytes(phase))
        )

    return IOProfile(
        app_time=app_time,
        n_ops=len(log.records),
        n_ranks=n_ranks,
        total_bytes=sum(r.nbytes for r in log.records),
        bytes_read=sum(r.nbytes for r in log.select(op="read")),
        bytes_written=sum(r.nbytes for r in log.select(op="write")),
        max_io_fraction=fractions[-1],
        median_io_fraction=fractions[len(fractions) // 2],
        size_histogram=histogram,
        mode_counts=mode_counts,
        cache_hits=sum(1 for r in log.records if r.cache_hit),
        phase_table=phase_table,
    )
