"""Export I/O traces to CSV / JSON for offline analysis."""

from __future__ import annotations

import csv
import io
import json
import math
from typing import Iterable

from repro.trace.recorder import IOOpRecord

__all__ = ["records_to_csv", "records_to_json"]

_FIELDS = [
    "op",
    "mode",
    "rank",
    "nbytes",
    "dataset",
    "phase",
    "t_submit",
    "t_unblocked",
    "t_complete",
    "cache_hit",
]


def records_to_csv(records: Iterable[IOOpRecord]) -> str:
    """Serialize records to CSV text (header + one row per op)."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(_FIELDS)
    for r in records:
        writer.writerow([getattr(r, f) for f in _FIELDS])
    return buf.getvalue()


def records_to_json(records: Iterable[IOOpRecord],
                    engine_stats=None) -> str:
    """Serialize records to a JSON array (NaN encoded as null).

    ``engine_stats`` (an :class:`~repro.sim.engine.EngineStats`, its
    ``snapshot()`` dict, or a per-job delta dict) opts into the
    simulator's counter surface: the result becomes an object
    ``{"records": [...], "engine_stats": {...}}`` so scheduler runs can
    report event and rebalance counts next to the operations they
    attribute to a tenant.  Without it the output stays the plain
    array for backward compatibility.
    """
    rows = []
    for r in records:
        row = {f: getattr(r, f) for f in _FIELDS}
        for key, value in row.items():
            if isinstance(value, float) and math.isnan(value):
                row[key] = None
        rows.append(row)
    if engine_stats is None:
        return json.dumps(rows)
    stats = (engine_stats.snapshot() if hasattr(engine_stats, "snapshot")
             else dict(engine_stats))
    return json.dumps({"records": rows, "engine_stats": stats})
