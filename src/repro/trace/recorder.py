"""I/O operation records and the paper's derived metrics."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

__all__ = ["IOLog", "IOOpRecord"]


@dataclass
class IOOpRecord:
    """One ``H5Dwrite`` / ``H5Dread`` as observed by the application.

    Three timestamps partition an operation's life:

    - ``t_submit``: the application called the API.
    - ``t_unblocked``: the API returned control to the application.
      For synchronous I/O this is after the full PFS transfer; for
      asynchronous I/O it is after the *transactional copy* only —
      which is precisely why the paper's measured async "bandwidth" is
      orders of magnitude higher.
    - ``t_complete``: the data is durable on the target storage
      (``nan`` while still in flight).
    """

    op: str  # 'write' | 'read'
    mode: str  # 'sync' | 'async'
    rank: int
    nbytes: float
    dataset: str
    phase: Optional[int]
    t_submit: float
    t_unblocked: float
    t_complete: float = float("nan")
    cache_hit: bool = False
    #: Background-drain retries this operation needed (0 on the happy path).
    retries: int = 0
    #: Whether any injected fault touched this operation (retried and/or
    #: fallen back).  Faulted measurements are excluded from the Fig. 2
    #: model history — their rates reflect the fault, not the system.
    faulted: bool = False
    #: Whether the operation completed via the synchronous fallback
    #: ladder instead of the normal background drain.
    fallback: bool = False

    def __post_init__(self) -> None:
        if self.op not in ("write", "read"):
            raise ValueError(f"op must be 'write' or 'read', got {self.op!r}")
        if self.mode not in ("sync", "async"):
            raise ValueError(f"mode must be 'sync' or 'async', got {self.mode!r}")
        if self.nbytes < 0:
            raise ValueError(f"negative nbytes: {self.nbytes}")
        if self.t_unblocked < self.t_submit:
            raise ValueError("t_unblocked before t_submit")
        if self.retries < 0:
            raise ValueError(f"negative retries: {self.retries}")

    @property
    def blocking_time(self) -> float:
        """Time the application thread was stalled by this operation."""
        return self.t_unblocked - self.t_submit

    @property
    def completion_time(self) -> float:
        """Submit-to-durable latency (``nan`` while in flight)."""
        return self.t_complete - self.t_submit

    @property
    def observed_rate(self) -> float:
        """The paper's per-op "I/O rate": size over *observed* (blocking)
        time."""
        bt = self.blocking_time
        if bt <= 0.0:
            return math.inf
        return self.nbytes / bt


def _merge_cache_stats(a: dict, b: dict) -> dict:
    """Sum two cache-metric snapshots; derived ratios are recomputed
    from the summed counters (never averaged)."""
    if not a:
        return dict(b)
    if not b:
        return dict(a)
    out: dict = {}
    tiers = {**a.get("bytes_to_tier", {})}
    for name, nbytes in b.get("bytes_to_tier", {}).items():
        tiers[name] = tiers.get(name, 0.0) + nbytes
    out["bytes_to_tier"] = {k: tiers[k] for k in sorted(tiers)}
    for key in ("evictions", "hits", "misses", "prefetch_failed",
                "prefetch_late", "prefetch_on_time", "prefetch_rejected"):
        out[key] = a.get(key, 0) + b.get(key, 0)
    reads = out["hits"] + out["misses"]
    out["hit_ratio"] = out["hits"] / reads if reads else 0.0
    done = (out["prefetch_on_time"] + out["prefetch_late"]
            + out["prefetch_failed"])
    out["on_time_ratio"] = out["prefetch_on_time"] / done if done else 1.0
    return dict(sorted(out.items()))


class IOLog:
    """Append-only log of I/O operations with paper-metric reductions."""

    def __init__(self) -> None:
        self.records: list[IOOpRecord] = []
        #: Staging-cache counters for the run (empty when no cache
        #: subsystem was wired in); see
        #: :meth:`repro.cache.CacheMetrics.snapshot`.
        self.cache_stats: dict = {}

    def __len__(self) -> int:
        return len(self.records)

    def append(self, record: IOOpRecord) -> IOOpRecord:
        """Add a record (returned for chaining/updating)."""
        self.records.append(record)
        return record

    # -- filters ----------------------------------------------------------
    def select(
        self,
        op: Optional[str] = None,
        mode: Optional[str] = None,
        phase: Optional[int] = None,
        rank: Optional[int] = None,
    ) -> list[IOOpRecord]:
        """Records matching every given criterion."""
        out = self.records
        if op is not None:
            out = [r for r in out if r.op == op]
        if mode is not None:
            out = [r for r in out if r.mode == mode]
        if phase is not None:
            out = [r for r in out if r.phase == phase]
        if rank is not None:
            out = [r for r in out if r.rank == rank]
        return list(out)

    def phases(self, op: Optional[str] = None) -> list[int]:
        """Sorted distinct phase indices present in the log."""
        return sorted(
            {r.phase for r in self.select(op=op) if r.phase is not None}
        )

    # -- paper metrics ------------------------------------------------------
    def phase_io_time(self, phase: int, op: Optional[str] = None) -> float:
        """The I/O time of one phase: the slowest rank's total blocking time.

        "With parallel I/O, since all the nodes have to synchronize
        after their respective data transfers, the MPI process taking
        the longest time determines the I/O time" (§III-B2).
        """
        records = self.select(op=op, phase=phase)
        if not records:
            raise ValueError(f"no records for phase {phase}")
        per_rank: dict[int, float] = {}
        for r in records:
            per_rank[r.rank] = per_rank.get(r.rank, 0.0) + r.blocking_time
        return max(per_rank.values())

    def phase_bytes(self, phase: int, op: Optional[str] = None) -> float:
        """Total bytes moved by all ranks in one phase."""
        return sum(r.nbytes for r in self.select(op=op, phase=phase))

    def phase_bandwidth(self, phase: int, op: Optional[str] = None) -> float:
        """Aggregate bandwidth of one phase: total bytes / phase I/O time."""
        t = self.phase_io_time(phase, op=op)
        nbytes = self.phase_bytes(phase, op=op)
        if t <= 0.0:
            return math.inf
        return nbytes / t

    def peak_bandwidth(self, op: Optional[str] = None) -> float:
        """Best per-phase aggregate bandwidth across all phases.

        The paper plots "the peak measured aggregate bandwidth for all
        I/O phases" (§V-A.1).
        """
        phases = self.phases(op=op)
        if not phases:
            raise ValueError("log has no phased records")
        return max(self.phase_bandwidth(p, op=op) for p in phases)

    def mean_bandwidth(self, op: Optional[str] = None) -> float:
        """Mean per-phase aggregate bandwidth across phases."""
        phases = self.phases(op=op)
        if not phases:
            raise ValueError("log has no phased records")
        values = [self.phase_bandwidth(p, op=op) for p in phases]
        finite = [v for v in values if math.isfinite(v)]
        if not finite:
            return math.inf
        return sum(finite) / len(finite)

    def total_blocking_time(self, rank: int) -> float:
        """Total time ``rank`` spent stalled in I/O calls."""
        return sum(r.blocking_time for r in self.select(rank=rank))

    def note_cache(self, snapshot: dict) -> None:
        """Attach a cache-metrics snapshot to the log."""
        self.cache_stats = dict(snapshot)

    def merge(self, other: "IOLog") -> "IOLog":
        """New log with both logs' records in submit-time order."""
        merged = IOLog()
        merged.records = sorted(
            self.records + other.records, key=lambda r: r.t_submit
        )
        merged.cache_stats = _merge_cache_stats(self.cache_stats,
                                                other.cache_stats)
        return merged

    def per_dataset_summary(self) -> dict[str, dict[str, float]]:
        """Per-dataset totals: op count, bytes, mean blocking time."""
        out: dict[str, dict[str, float]] = {}
        for r in self.records:
            entry = out.setdefault(
                r.dataset, {"ops": 0, "bytes": 0.0, "blocking": 0.0}
            )
            entry["ops"] += 1
            entry["bytes"] += r.nbytes
            entry["blocking"] += r.blocking_time
        for entry in out.values():
            entry["mean_blocking"] = entry["blocking"] / entry["ops"]
        return out
