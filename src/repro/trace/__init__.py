"""Structured tracing of I/O operations.

The paper's metrics all derive from per-operation timings: "We measured
the time to perform read or write operations from HDF5.  The measured
time ... includes the transactional overhead" and "the MPI process
taking the longest time determines the I/O time for that iteration"
(§V-A, §III-B2).  :class:`IOLog` collects one :class:`IOOpRecord` per
``H5Dwrite``/``H5Dread`` and reduces them to the paper's
aggregate-bandwidth and phase-time metrics.
"""

from repro.trace.recorder import IOLog, IOOpRecord
from repro.trace.export import records_to_csv, records_to_json
from repro.trace.profiler import IOProfile, profile_log
from repro.trace.spans import Span, SpanLog

__all__ = [
    "IOLog",
    "IOOpRecord",
    "IOProfile",
    "Span",
    "SpanLog",
    "profile_log",
    "records_to_csv",
    "records_to_json",
]
